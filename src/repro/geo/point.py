"""Geographic points and great-circle distance."""

from __future__ import annotations

import math
from dataclasses import dataclass

EARTH_RADIUS_KM = 6371.0088  # IUGG mean Earth radius


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair in decimal degrees.

    Latitude is clamped-checked to [-90, 90]; longitude to [-180, 180].
    The class is frozen and hashable so points can key dictionaries
    (e.g. cached pairwise distances).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range [-90, 90]: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range [-180, 180]: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def distance_miles(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in miles (paper uses miles)."""
        return haversine_km(self, other) * 0.621371

    def offset_km(self, north_km: float, east_km: float) -> "GeoPoint":
        """Return a new point displaced by the given kilometres.

        Uses the local-tangent-plane approximation, which is accurate to
        well under 1% at metro scale (tens of km) — the scale at which the
        paper's experiments operate (users within 10-50 miles).
        """
        dlat = north_km / 111.32  # km per degree latitude
        km_per_deg_lon = 111.32 * math.cos(math.radians(self.lat))
        if abs(km_per_deg_lon) < 1e-9:
            raise ValueError("cannot offset east/west at the pole")
        dlon = east_km / km_per_deg_lon
        return GeoPoint(self.lat + dlat, self.lon + dlon)

    def __str__(self) -> str:
        return f"({self.lat:.5f}, {self.lon:.5f})"


def haversine_km(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points, in kilometres.

    Standard haversine formula; numerically stable for the short
    (metro-scale) distances this library mostly deals with.
    """
    return haversine_km_coords(a.lat, a.lon, b.lat, b.lon)


def haversine_km_coords(
    alat: float, alon: float, blat: float, blon: float
) -> float:
    """:func:`haversine_km` on raw coordinates.

    Hot paths (discovery filtering over thousands of heartbeats) call
    this directly on stored lat/lon floats, skipping GeoPoint
    construction per candidate. Bit-identical to :func:`haversine_km` —
    that function delegates here — which selection-parity guarantees
    rely on.
    """
    lat1, lon1 = math.radians(alat), math.radians(alon)
    lat2, lon2 = math.radians(blat), math.radians(blon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))
