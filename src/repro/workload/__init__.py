"""Workload models: the AR cognitive-assistance application.

The paper evaluates with "AR-based cognitive assistance [that] helps
visually impaired people to identify objects. Users constantly send video
frames to edge servers at a max rate of 20 FPS (which can adaptively
decrease based on the network and processing performance). All video
frames have the standard size of 0.02 MB after encoding" (§V-A).

- :class:`~repro.workload.ar.ARApplication` — the application profile:
  frame size, max FPS, latency target.
- :class:`~repro.workload.frames.Frame` /
  :class:`~repro.workload.frames.FrameSource` — per-frame records and a
  seeded generator with optional size variation.
- :class:`~repro.workload.adaptive.AdaptiveRateController` — AIMD rate
  control that lowers FPS when observed end-to-end latency exceeds the
  target and recovers toward the maximum otherwise.
- :class:`~repro.workload.synthetic.TestWorkload` — the synthetic
  single-frame test workload the "what-if" mechanism invokes.
"""

from repro.workload.adaptive import AdaptiveRateController
from repro.workload.ar import ARApplication, DEFAULT_AR_APP
from repro.workload.frames import Frame, FrameSource
from repro.workload.synthetic import TestWorkload

__all__ = [
    "ARApplication",
    "DEFAULT_AR_APP",
    "Frame",
    "FrameSource",
    "AdaptiveRateController",
    "TestWorkload",
]
