"""Adaptive offloading-rate control.

"Users constantly send video frames to edge servers at a max rate of 20
FPS (which can adaptively decrease based on the network and processing
performance)" (§V-A). Rate adaptation also matters structurally: it is
one of the causes of "varying amount of workload under the same number of
attached users" that the edge node's performance monitor exists to catch
(§IV-C2, trigger 3).

:class:`AdaptiveRateController` implements AIMD over the observed
end-to-end latency: multiplicative decrease when latency exceeds the
application target (the queue is building), additive increase back toward
``max_fps`` when comfortably below it. An EWMA smooths per-frame noise so
a single jitter spike does not halve the rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workload.ar import ARApplication


@dataclass
class AdaptiveRateController:
    """AIMD frame-rate controller for one user.

    Attributes:
        app: the application profile (bounds and latency target).
        decrease_factor: multiplicative backoff on overload (0 < f < 1).
        increase_fps: additive recovery per adjustment interval.
        ewma_alpha: smoothing of observed latency.
        headroom: fraction of the target below which recovery is allowed
            (hysteresis so the controller does not oscillate around the
            target).
    """

    app: ARApplication
    decrease_factor: float = 0.7
    increase_fps: float = 1.0
    ewma_alpha: float = 0.2
    headroom: float = 0.85
    fps: float = field(init=False)
    smoothed_latency_ms: float = field(init=False, default=0.0)
    adjustments: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0.0 < self.decrease_factor < 1.0:
            raise ValueError(f"decrease_factor must be in (0,1): {self.decrease_factor}")
        if self.increase_fps <= 0:
            raise ValueError(f"increase_fps must be positive: {self.increase_fps}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0,1]: {self.ewma_alpha}")
        if not 0.0 < self.headroom <= 1.0:
            raise ValueError(f"headroom must be in (0,1]: {self.headroom}")
        self.fps = self.app.max_fps

    def observe(self, latency_ms: float) -> None:
        """Feed one end-to-end latency observation and adapt the rate."""
        if latency_ms < 0:
            raise ValueError(f"latency must be >= 0: {latency_ms}")
        if self.smoothed_latency_ms == 0.0:
            self.smoothed_latency_ms = latency_ms
        else:
            self.smoothed_latency_ms = (
                self.ewma_alpha * latency_ms
                + (1.0 - self.ewma_alpha) * self.smoothed_latency_ms
            )
        target = self.app.target_latency_ms
        if self.smoothed_latency_ms > target:
            new_fps = max(self.app.min_fps, self.fps * self.decrease_factor)
        elif self.smoothed_latency_ms < target * self.headroom:
            new_fps = min(self.app.max_fps, self.fps + self.increase_fps)
        else:
            return
        if new_fps != self.fps:
            self.fps = new_fps
            self.adjustments += 1

    def reset(self) -> None:
        """Reset to the maximum rate (e.g. after switching edge nodes)."""
        self.fps = self.app.max_fps
        self.smoothed_latency_ms = 0.0

    @property
    def interval_ms(self) -> float:
        """Current inter-frame interval."""
        return 1000.0 / self.fps
