"""Frame records and the client-side frame source."""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Optional

from repro.workload.ar import ARApplication


@dataclass(frozen=True)
class Frame:
    """One offloading request: a single encoded video frame.

    Attributes:
        frame_id: globally unique id (for tracing and response matching).
        user_id: originating user.
        created_ms: client-side creation timestamp (sim ms).
        size_bytes: encoded payload size.
        synthetic: True for the "what-if" test frame an edge node
            invokes on itself (never crosses the network).
    """

    frame_id: int
    user_id: str
    created_ms: float
    size_bytes: float
    synthetic: bool = False


class FrameSource:
    """Generates the stream of frames a user offloads.

    Encoded frame sizes in a real camera stream vary a little with scene
    complexity; ``size_jitter`` adds a bounded uniform variation around
    the application's standard frame size (0 disables it, matching the
    paper's "standard size" simplification).
    """

    def __init__(
        self,
        user_id: str,
        app: ARApplication,
        rng: Optional[random.Random] = None,
        size_jitter: float = 0.0,
    ) -> None:
        if not 0.0 <= size_jitter < 1.0:
            raise ValueError(f"size_jitter must be in [0, 1): {size_jitter}")
        self.user_id = user_id
        self.app = app
        self.rng = rng or random.Random(0)
        self.size_jitter = size_jitter
        self.frames_created = 0
        # Per-source ids: frames are identified by (user_id, frame_id)
        # everywhere downstream, and a process-global counter would make
        # otherwise-identical runs diverge (determinism contract).
        self._ids = itertools.count(1)

    def next_frame(self, now_ms: float) -> Frame:
        """Create the next frame at time ``now_ms``."""
        size = self.app.frame_bytes
        if self.size_jitter > 0:
            size *= 1.0 + self.rng.uniform(-self.size_jitter, self.size_jitter)
        self.frames_created += 1
        return Frame(
            frame_id=next(self._ids),
            user_id=self.user_id,
            created_ms=now_ms,
            size_bytes=size,
        )
