"""The synthetic test workload behind "what-if" probing.

"To avoid time-consuming profiling and to improve the accuracy of
performance prediction, we invoke a *test synthetic workload* to simulate
'new-user-join' scenarios. The test workload is based on the same
application logic and compute requirements as the real offloading task"
(§IV-C2). For the AR application it is "image processing for a single
synthetic video frame with standard image size".

:class:`TestWorkload` describes that synthetic unit of work; the edge
server submits it to its own :class:`~repro.nodes.processing.FrameProcessor`
queue and caches the measured sojourn as the node's current "what-if"
performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.ar import ARApplication


@dataclass(frozen=True)
class TestWorkload:
    """Descriptor of the synthetic probe workload for an application.

    Attributes:
        app: the application whose compute requirements it mirrors.
        invocation_delay_rtts: the join-triggered invocation is delayed
            by this many common-user RTTs so the measurement reflects
            the state *after* the newly accepted user's frames start
            arriving ("This delay is set to be two times the common user
            RTT propagation", Algorithm 1 discussion).
    """

    #: Not a test case, despite the name (pytest collection hint).
    __test__ = False

    app: ARApplication
    invocation_delay_rtts: float = 2.0

    @property
    def frame_bytes(self) -> float:
        """Synthetic frame size: the application's standard frame."""
        return self.app.frame_bytes

    def invocation_delay_ms(self, common_rtt_ms: float) -> float:
        """Delay before a join-triggered test-workload run."""
        if common_rtt_ms < 0:
            raise ValueError(f"rtt must be >= 0: {common_rtt_ms}")
        return self.invocation_delay_rtts * common_rtt_ms
