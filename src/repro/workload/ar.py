"""The AR cognitive-assistance application profile."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ARApplication:
    """Static profile of an edge application (one "application server type").

    Defaults reproduce §V-A of the paper: 0.02 MB encoded frames sent at
    up to 20 FPS, with negligible-size responses ("lightweight cognitive
    assistance instructions").

    Attributes:
        name: application identifier (one Application Manager per type).
        frame_bytes: encoded request payload size.
        response_bytes: response payload size (negligible by default).
        max_fps: maximum client offloading rate.
        min_fps: floor below which the adaptive controller will not go
            (the application becomes useless under ~2 FPS).
        target_latency_ms: end-to-end latency above which the experience
            degrades; the adaptive controller steers below this, and QoS
            -constrained selection policies can use it as the cutoff.
    """

    name: str = "ar-cognitive-assistance"
    frame_bytes: float = 0.02 * 1e6  # 0.02 MB
    response_bytes: float = 200.0
    max_fps: float = 20.0
    min_fps: float = 2.0
    target_latency_ms: float = 150.0

    def __post_init__(self) -> None:
        if self.frame_bytes <= 0:
            raise ValueError(f"frame_bytes must be positive: {self.frame_bytes}")
        if self.response_bytes < 0:
            raise ValueError(f"response_bytes must be >= 0: {self.response_bytes}")
        if not 0 < self.min_fps <= self.max_fps:
            raise ValueError(
                f"need 0 < min_fps <= max_fps, got {self.min_fps}, {self.max_fps}"
            )
        if self.target_latency_ms <= 0:
            raise ValueError(
                f"target_latency_ms must be positive: {self.target_latency_ms}"
            )

    @property
    def frame_interval_ms(self) -> float:
        """Inter-frame gap at the maximum rate."""
        return 1000.0 / self.max_fps

    def interval_ms_at(self, fps: float) -> float:
        """Inter-frame gap at an arbitrary rate.

        Raises:
            ValueError: for non-positive fps.
        """
        if fps <= 0:
            raise ValueError(f"fps must be positive: {fps}")
        return 1000.0 / fps


#: The paper's exact evaluation application.
DEFAULT_AR_APP = ARApplication()
