"""Multiple application service types on one edge fleet (§III-B).

"For simplicity, we consider a single application server type in this
paper, but our model can be extended to support any number of
application server types. An application manager manages each
application service type in the system."

This module is that extension:

- :class:`ApplicationSpec` — an application type plus its compute cost
  relative to the node hardware (``service_scale`` multiplies the
  node's per-frame time: an OCR service might cost 0.5x the AR
  detector, a segmentation service 2x).
- :class:`MultiAppEdgeServer` — an edge node hosting several
  application servers. All services share the node's *single* frame
  queue (the machine is the bottleneck), but each service keeps its own
  attached-user set, ``seqNum`` and what-if cache, because the
  "new-user-join" scenario differs per application.
- :class:`ApplicationManager` — one Central-Manager-role instance per
  application type, as the paper prescribes; each one only registers
  nodes that host its application.

Clients remain the single-app :class:`~repro.core.client.EdgeClient`,
pointed at their application's manager through an
:class:`AppScopedSystem` facade — the client code is untouched, which is
the point: multi-app support is a deployment topology, not a protocol
change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.edge_server import EdgeServer
from repro.core.manager import CentralManager
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.geo.point import GeoPoint
from repro.net.latency import NetworkTier
from repro.nodes.hardware import HardwareProfile
from repro.workload.ar import ARApplication

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import EdgeSystem


@dataclass(frozen=True)
class ApplicationSpec:
    """One deployable application service type.

    Attributes:
        app: the workload profile (frame size, rates, QoS target).
        service_scale: this application's per-frame compute cost as a
            multiple of the node's calibrated AR frame time.
    """

    app: ARApplication
    service_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.service_scale <= 0:
            raise ValueError(f"service_scale must be positive: {self.service_scale}")

    @property
    def name(self) -> str:
        return self.app.name


class _AppService(EdgeServer):
    """One application server inside a multi-app node.

    Subclasses :class:`EdgeServer` so probing, seqNum, the what-if cache
    and the performance monitor are inherited verbatim, but routes all
    compute through the *shared* node processor with this application's
    service time, so co-hosted applications contend for the machine.
    """

    def __init__(
        self,
        system: "EdgeSystem",
        node_id: str,
        profile: HardwareProfile,
        spec: ApplicationSpec,
        shared_processor,
        manager: CentralManager,
        **kwargs,
    ) -> None:
        super().__init__(system, node_id, profile, **kwargs)
        self.spec = spec
        self.processor = shared_processor  # replace the private queue
        self._manager = manager
        base = profile.base_frame_ms * spec.service_scale
        self.what_if_ms = base
        self.stay_ms = base
        self._monitor_baseline_ms = base

    # The service's compute cost on this hardware.
    @property
    def service_ms(self) -> float:
        return self.profile.base_frame_ms * self.spec.service_scale

    def receive_frame(self, frame, arrival_ms):  # type: ignore[override]
        if not self.alive:
            return None
        self.frames_received += 1
        completed = self.processor.submit(arrival_ms, service_ms=self.service_ms)
        if completed is None:
            self.frames_dropped += 1
            return None
        return completed

    def _invoke_test_workload(self) -> None:  # type: ignore[override]
        """Same triggers as the base class, with per-app service time."""
        if not self.alive or self._test_pending:
            return
        now = self.system.sim.now
        completed = self.processor.submit(
            now, synthetic=True, service_ms=self.service_ms
        )
        if completed is None:
            return
        self.test_workload_invocations += 1
        from repro.obs.events import TestWorkloadInvoked

        self.system.trace.emit(TestWorkloadInvoked(now, self.node_id))
        self._test_pending = True

        def update_cache() -> None:
            self._test_pending = False
            if not self.alive:
                return
            from repro.nodes.processing import analytic_sojourn_ms

            measured = completed.sojourn_ms
            n_attached = len(self.attached)
            max_fps = self.spec.app.max_fps
            # Demand projection over the *shared* queue: this service's
            # own users plus the live cross-application arrival rate.
            cross_fps = self.processor.arrival_rate_fps(self.system.sim.now)
            own_scale = self.spec.service_scale
            equivalent_fps = cross_fps + (n_attached + 1) * max_fps * own_scale
            projected = analytic_sojourn_ms(
                self.profile,
                equivalent_fps,
                slowdown_factor=self.processor.slowdown_factor,
            )
            alpha = 0.6
            self.what_if_ms = (
                alpha * max(measured, projected) + (1 - alpha) * self.what_if_ms
            )
            stay_projected = analytic_sojourn_ms(
                self.profile,
                cross_fps + max(n_attached, 1) * max_fps * own_scale,
                slowdown_factor=self.processor.slowdown_factor,
            )
            self.stay_ms = (
                alpha * max(measured, stay_projected) + (1 - alpha) * self.stay_ms
            )
            self._monitor_baseline_ms = measured

        self.system.sim.schedule_at(
            completed.completion_ms, update_cache, label=f"{self.node_id}.cache"
        )

    def _send_heartbeat(self) -> None:  # type: ignore[override]
        """Heartbeat to this application's own manager."""
        if not self.alive:
            return
        status = self.status()
        delay = self.system.topology.one_way_ms(self.node_id, self.system.manager_id)
        self.system.sim.schedule(
            delay,
            lambda: self._manager.receive_heartbeat(status),
            label=f"{self.node_id}.hb",
        )


class MultiAppEdgeServer:
    """A physical node hosting one application server per installed spec."""

    def __init__(
        self,
        system: "EdgeSystem",
        node_id: str,
        profile: HardwareProfile,
        specs: List[ApplicationSpec],
        managers: Dict[str, CentralManager],
        **node_kwargs,
    ) -> None:
        if not specs:
            raise ValueError("a multi-app node needs at least one application")
        from repro.nodes.processing import FrameProcessor

        self.node_id = node_id
        self.profile = profile
        self.shared_processor = FrameProcessor(profile)
        self.services: Dict[str, _AppService] = {}
        for spec in specs:
            service = _AppService(
                system,
                node_id,
                profile,
                spec,
                self.shared_processor,
                managers[spec.name],
                **node_kwargs,
            )
            self.services[spec.name] = service

    def start(self) -> None:
        for service in self.services.values():
            service.start()

    def fail(self) -> None:
        for service in self.services.values():
            service.fail()

    @property
    def alive(self) -> bool:
        return any(s.alive for s in self.services.values())

    def service(self, app_name: str) -> _AppService:
        return self.services[app_name]


class AppScopedSystem:
    """A facade giving single-app clients a view onto one application.

    Proxies everything to the real :class:`EdgeSystem` but swaps the
    manager and the ``nodes`` mapping for this application's service
    objects — so the unmodified :class:`EdgeClient` probes/joins the
    right application server on each physical node. ``nodes`` is a live
    view: nodes spawned after the facade was created appear in it.
    """

    def __init__(
        self,
        deployment: "MultiAppDeployment",
        app_name: str,
    ) -> None:
        self._deployment = deployment
        self._app_name = app_name
        self.manager = deployment.managers[app_name]
        self.app = deployment.specs[app_name].app

    @property
    def nodes(self) -> Dict[str, "_AppService"]:
        return {
            node_id: node.service(self._app_name)
            for node_id, node in self._deployment.nodes.items()
            if self._app_name in node.services
        }

    def __getattr__(self, name):
        return getattr(self._deployment.system, name)


class MultiAppDeployment:
    """Wiring for an N-application deployment over one edge fleet.

    Usage::

        deployment = MultiAppDeployment(system, [ar_spec, ocr_spec])
        deployment.spawn_node("V1", profile, point)
        client = deployment.make_client("alice", "ar-cognitive-assistance")
    """

    def __init__(
        self,
        system: "EdgeSystem",
        specs: List[ApplicationSpec],
        *,
        global_policy: Optional[GlobalSelectionPolicy] = None,
    ) -> None:
        if not specs:
            raise ValueError("need at least one application spec")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate application names: {names}")
        self.system = system
        self.specs = {spec.name: spec for spec in specs}
        #: One Application Manager per service type (§III-B).
        self.managers: Dict[str, CentralManager] = {
            spec.name: CentralManager(
                system, global_policy or GlobalSelectionPolicy()
            )
            for spec in specs
        }
        self.nodes: Dict[str, MultiAppEdgeServer] = {}

    # ------------------------------------------------------------------
    def spawn_node(
        self,
        node_id: str,
        profile: HardwareProfile,
        point: GeoPoint,
        *,
        tier: NetworkTier = NetworkTier.HOME_WIFI,
        apps: Optional[List[str]] = None,
        **endpoint_kwargs,
    ) -> MultiAppEdgeServer:
        """Register a node hosting the given applications (default: all)."""
        from repro.net.topology import NetworkEndpoint

        existing = self.nodes.get(node_id)
        # A node id may be reused only after its previous holder failed;
        # the endpoint is then replaced explicitly (cache invalidation).
        self.system.topology.add_endpoint(
            NetworkEndpoint(node_id, point, tier=tier, **endpoint_kwargs),
            replace=existing is not None and not existing.alive,
        )
        hosted = [self.specs[name] for name in (apps or list(self.specs))]
        node = MultiAppEdgeServer(
            self.system, node_id, profile, hosted, self.managers
        )
        self.nodes[node_id] = node
        node.start()
        return node

    def fail_node(self, node_id: str) -> None:
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.fail()
        detection = self.system.config.failure_detection_ms
        for client in self.system.clients.values():
            if (
                getattr(client, "current_edge", None) == node_id
                or node_id in getattr(client, "links", {})
            ):
                self.system.sim.schedule(
                    detection, lambda c=client: c.on_edge_failure(node_id)
                )

    def scoped_system(self, app_name: str) -> AppScopedSystem:
        """The single-app view clients of ``app_name`` operate on."""
        if app_name not in self.specs:
            raise KeyError(f"unknown application: {app_name!r}")
        return AppScopedSystem(self, app_name)

    def make_client(self, user_id: str, app_name: str, **kwargs):
        """Create (and register) an EdgeClient bound to one application."""
        from repro.core.client import EdgeClient

        scoped = self.scoped_system(app_name)
        client = EdgeClient(scoped, user_id, app=self.specs[app_name].app, **kwargs)
        self.system.clients[user_id] = client
        return client
