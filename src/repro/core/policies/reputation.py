"""Reputation-weighted global selection (extension).

The paper points at reputation systems for unreliable volunteers (§IV-E
cites Sonnek et al., "Reputation-based scheduling on unreliable
distributed infrastructures") without building one. This module adds the
minimal useful version: the Central Manager tracks each node identity's
observed sessions (heartbeat appearance → disappearance) and scores
reliability with a Beta-style estimator over session lifetimes; the
global sort then discounts flaky nodes' availability, so repeat
offenders stop landing in candidate lists the moment alternatives exist.

A node's reliability starts at the neutral prior and converges with
evidence; identities are remembered across re-joins — exactly what makes
reputation meaningful under churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Tuple

from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import (
    AFFILIATION_BONUS,
    DISTANCE_PENALTY_PER_KM,
)


@dataclass
class NodeRecord:
    """Observed history of one node identity."""

    sessions: int = 0
    departures: int = 0
    total_uptime_ms: float = 0.0
    current_session_start_ms: float = -1.0

    @property
    def online(self) -> bool:
        return self.current_session_start_ms >= 0.0


@dataclass
class ReputationTracker:
    """Session-based reliability scores for node identities.

    Reliability is ``(uptime_credit + 1) / (uptime_credit + departures + 2)``
    where ``uptime_credit`` counts completed uptime in units of
    ``target_session_ms`` — a node must *stay* around to earn trust, and
    every unannounced departure costs one unit. New identities score the
    neutral prior 0.5; a long-lived dedicated node approaches 1.0; a
    node that flaps every few seconds sinks toward 0.
    """

    target_session_ms: float = 60_000.0
    _records: Dict[str, NodeRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.target_session_ms <= 0:
            raise ValueError("target_session_ms must be positive")

    # ------------------------------------------------------------------
    def record_online(self, node_id: str, now_ms: float) -> None:
        """Called when a node (re)appears in the registry."""
        record = self._records.setdefault(node_id, NodeRecord())
        if not record.online:
            record.sessions += 1
            record.current_session_start_ms = now_ms

    def record_departure(self, node_id: str, now_ms: float) -> None:
        """Called when a node ages out of the registry (silent death)."""
        record = self._records.get(node_id)
        if record is None or not record.online:
            return
        record.total_uptime_ms += max(0.0, now_ms - record.current_session_start_ms)
        record.current_session_start_ms = -1.0
        record.departures += 1

    def reliability(self, node_id: str, now_ms: float) -> float:
        """Reliability estimate in (0, 1); 0.5 for unknown identities."""
        record = self._records.get(node_id)
        if record is None:
            return 0.5
        uptime = record.total_uptime_ms
        if record.online:
            uptime += max(0.0, now_ms - record.current_session_start_ms)
        credit = uptime / self.target_session_ms
        return (credit + 1.0) / (credit + record.departures + 2.0)

    def known_identities(self) -> Tuple[str, ...]:
        return tuple(sorted(self._records))


def reputation_sort_key(
    tracker: ReputationTracker,
    clock: Callable[[], float],
) -> Callable[[DiscoveryQuery], Callable[[NodeStatus], Tuple[float, str]]]:
    """A drop-in ``sort_key_factory`` discounting availability by reliability.

    ``score = reliability x free_cores + affiliation − distance_penalty``
    so a flaky node needs proportionally more spare capacity to outrank a
    proven one.
    """

    def factory(query: DiscoveryQuery):
        user_point = query.point
        now_ms = clock()

        def key(node: NodeStatus) -> Tuple[float, str]:
            score = tracker.reliability(node.node_id, now_ms) * node.availability_score
            if query.isp is not None and node.isp == query.isp:
                score += AFFILIATION_BONUS
            score -= DISTANCE_PENALTY_PER_KM * user_point.distance_km(node.point)
            return (-score, node.node_id)

        return key

    return factory
