"""Selection policies.

- :mod:`~repro.core.policies.global_policies` — manager-side filters and
  sorters that produce the coarse TopN candidate list (step 1).
- :mod:`~repro.core.policies.local_policies` — client-side rankings over
  probe outcomes: LO, GO, and QoS-constrained GO (step 2, §IV-D).
"""

from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
    availability_sort_key,
)
from repro.core.policies.local_policies import (
    LocalSelectionPolicy,
    sort_by_global_overhead,
    sort_by_local_overhead,
    sort_with_qos,
)

__all__ = [
    "GlobalSelectionPolicy",
    "GeoProximityFilter",
    "availability_sort_key",
    "LocalSelectionPolicy",
    "sort_by_local_overhead",
    "sort_by_global_overhead",
    "sort_with_qos",
]
