"""Client-side local edge selection policies (§IV-D).

Each policy is a pure function ``List[ProbeOutcome] -> List[ProbeOutcome]``
returning candidates best-first. They plug into Algorithm 2's
``SortLocalSelectionPolicy()`` slot:

- :func:`sort_by_local_overhead` — minimize ``LO_j`` (selfish best
  latency for this user).
- :func:`sort_by_global_overhead` — minimize ``GO_j`` (the paper's
  policy optimizing global average latency: LO plus the degradation the
  join inflicts on the candidate's existing users).
- :func:`sort_with_qos` — "first filter out edge candidates whose LO
  violates QoS requirements and then select the node with lowest GO";
  with an empty survivor set the join is rejected (QoS admission
  control).

Ties break on node id so sorting is fully deterministic.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.probing import ProbeOutcome

LocalSelectionPolicy = Callable[[Sequence[ProbeOutcome]], List[ProbeOutcome]]


def sort_by_local_overhead(outcomes: Sequence[ProbeOutcome]) -> List[ProbeOutcome]:
    """Rank candidates by ``LO_j`` ascending (best local candidate first)."""
    return sorted(outcomes, key=lambda o: (o.local_overhead_ms, o.node_id))


def sort_by_global_overhead(outcomes: Sequence[ProbeOutcome]) -> List[ProbeOutcome]:
    """Rank candidates by ``GO_j`` ascending — the paper's default."""
    return sorted(outcomes, key=lambda o: (o.global_overhead_ms, o.node_id))


def sort_with_qos(
    qos_latency_ms: float,
    base_policy: Optional[LocalSelectionPolicy] = None,
) -> LocalSelectionPolicy:
    """Build a QoS-constrained policy.

    Candidates with ``LO > qos_latency_ms`` are removed, then the base
    policy (GO by default) ranks the survivors. An empty result signals
    the client that no candidate can satisfy the QoS requirement.

    Raises:
        ValueError: on a non-positive QoS bound.
    """
    if qos_latency_ms <= 0:
        raise ValueError(f"qos_latency_ms must be positive: {qos_latency_ms}")
    policy = base_policy or sort_by_global_overhead

    def qos_policy(outcomes: Sequence[ProbeOutcome]) -> List[ProbeOutcome]:
        eligible = [o for o in outcomes if o.local_overhead_ms <= qos_latency_ms]
        return policy(eligible)

    return qos_policy


def policy_for(
    use_global_overhead: bool, qos_latency_ms: Optional[float] = None
) -> LocalSelectionPolicy:
    """Resolve the configured policy from :class:`~repro.core.config.SystemConfig` fields."""
    base = sort_by_global_overhead if use_global_overhead else sort_by_local_overhead
    if qos_latency_ms is not None:
        return sort_with_qos(qos_latency_ms, base)
    return base
