"""Manager-side global edge selection (step 1 of the 2-step approach).

"We first apply a geo-proximity filter to rule out unqualified nodes, and
then prioritize the local candidates based on resource availability,
network affiliation and user preferences. Specifically in geo-proximity
search, we use GeoHash to identify a wider-range geographical area to
include remote nodes which may be useful as a last resort" (§IV-B).

The policy is deliberately coarse: "the global edge selection of our
2-step approach is coarse-grained with high tolerance to edge selection
inaccuracy and mismatch" — final accuracy comes from client probing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.geo import geohash as gh
from repro.geo.point import GeoPoint, haversine_km_coords
from repro.geo.spatial_index import GeohashSpatialIndex


@dataclass(frozen=True)
class GeoProximityFilter:
    """GeoHash-backed proximity filter with a widened fallback.

    Nodes are first matched against the 3x3 GeoHash cell block covering
    ``radius_km`` around the user. If fewer than ``min_candidates``
    survive, the search widens to ``wide_radius_km`` — the paper's
    "remote nodes ... useful as a last resort".
    """

    radius_km: float = 80.0
    wide_radius_km: float = 400.0
    min_candidates: int = 1

    def __post_init__(self) -> None:
        if self.radius_km <= 0 or self.wide_radius_km < self.radius_km:
            raise ValueError("need 0 < radius_km <= wide_radius_km")
        if self.min_candidates < 0:
            raise ValueError("min_candidates must be >= 0")

    def apply(
        self,
        user_point: GeoPoint,
        nodes: Sequence[NodeStatus],
        min_candidates: Optional[int] = None,
    ) -> Tuple[List[NodeStatus], bool]:
        """Return (surviving nodes, widened?).

        ``min_candidates`` (defaulting to the filter's own) is normally
        the query's TopN: a candidate list shorter than TopN silently
        strips the user of backup nodes, so remote nodes — "useful as a
        last resort" — are pulled in whenever the local area cannot
        fill the list.
        """
        needed = self.min_candidates if min_candidates is None else min_candidates
        local = self._within(user_point, nodes, self.radius_km)
        if len(local) >= needed:
            return local, False
        wide = self._within(user_point, nodes, self.wide_radius_km)
        if len(wide) > len(local):
            return wide, True
        return local, False

    def apply_indexed(
        self,
        user_point: GeoPoint,
        index: GeohashSpatialIndex,
        min_candidates: Optional[int] = None,
        *,
        exclude: Sequence[str] = (),
        predicate: Optional[Callable[[NodeStatus], bool]] = None,
    ) -> Tuple[List[NodeStatus], bool]:
        """Index-backed :meth:`apply`: cell-prefix lookups, no registry scan.

        ``exclude``/``predicate`` are applied here (rather than by the
        caller pre-filtering a node list) because with an index there is
        no materialized pool to pre-filter — only the per-cell
        candidates ever get touched. Returns exactly what :meth:`apply`
        would for the same registry contents: the prefilter differs only
        in how cells are intersected with the registry, and the exact
        haversine cut below makes the outcome identical.
        """
        needed = self.min_candidates if min_candidates is None else min_candidates
        local = self._within_indexed(
            user_point, index, self.radius_km, exclude, predicate
        )
        if len(local) >= needed:
            return local, False
        wide = self._within_indexed(
            user_point, index, self.wide_radius_km, exclude, predicate
        )
        if len(wide) > len(local):
            return wide, True
        return local, False

    def within_indexed(
        self,
        user_point: GeoPoint,
        index: GeohashSpatialIndex,
        radius_km: float,
        *,
        exclude: Sequence[str] = (),
        predicate: Optional[Callable[[NodeStatus], bool]] = None,
    ) -> List[NodeStatus]:
        """One fixed-radius phase of :meth:`apply_indexed` (no widening).

        The control-plane router composes this shard-locally: each shard
        evaluates one radius against its own index and the router makes
        the widening decision from the summed counts.
        """
        return self._within_indexed(user_point, index, radius_km, exclude, predicate)

    def _within(
        self, user_point: GeoPoint, nodes: Sequence[NodeStatus], radius_km: float
    ) -> List[NodeStatus]:
        # GeoHash pre-filter: candidate cells covering the radius...
        cells = set(gh.covering_cells(user_point, radius_km))
        precision = len(next(iter(cells)))
        prefiltered = [
            n for n in nodes if n.geohash[:precision] in cells
        ]
        # ... then an exact haversine cut (cells overshoot the disc).
        ulat, ulon = user_point.lat, user_point.lon
        return [
            n
            for n in prefiltered
            if haversine_km_coords(ulat, ulon, n.lat, n.lon) <= radius_km
        ]

    def _within_indexed(
        self,
        user_point: GeoPoint,
        index: GeohashSpatialIndex,
        radius_km: float,
        exclude: Sequence[str],
        predicate: Optional[Callable[[NodeStatus], bool]],
    ) -> List[NodeStatus]:
        cells = gh.covering_cells(user_point, radius_km)
        ulat, ulon = user_point.lat, user_point.lon
        out: List[NodeStatus] = []
        for status in index.query_cells(cells):
            if status.node_id in exclude:
                continue
            if predicate is not None and not predicate(status):
                continue
            if haversine_km_coords(ulat, ulon, status.lat, status.lon) <= radius_km:
                out.append(status)
        return out


#: Score bonus (in free-core units) for sharing the user's ISP tag.
AFFILIATION_BONUS = 2.0
#: Score penalty per km of distance (free-core units). Small by design:
#: the manager nudges toward nearby nodes but lets availability dominate.
DISTANCE_PENALTY_PER_KM = 0.02


def availability_sort_key(
    query: DiscoveryQuery,
) -> Callable[[NodeStatus], Tuple[float, str]]:
    """Weighted-score sort key prioritizing candidates for a user.

    Combines the paper's three global-selection signals — resource
    availability, network affiliation, geo-proximity — into one score
    (higher is better)::

        score = free_cores + AFFILIATION_BONUS·same_isp
                − DISTANCE_PENALTY_PER_KM·distance

    A *weighted* blend matters: a lexicographic affiliation-first order
    would hand every user a candidate list of only its same-ISP
    volunteers, hiding well-provisioned dedicated nodes entirely once
    ``TopN`` is small. Coarse mis-scoring is fine (clients probe), but
    systematically excluding a node class is not. Node id breaks ties so
    the ordering is deterministic.
    """

    ulat, ulon = query.lat, query.lon
    user_isp = query.isp

    def key(node: NodeStatus) -> Tuple[float, str]:
        score = node.availability_score
        if user_isp is not None and node.isp == user_isp:
            score += AFFILIATION_BONUS
        score -= DISTANCE_PENALTY_PER_KM * haversine_km_coords(
            ulat, ulon, node.lat, node.lon
        )
        return (-score, node.node_id)

    return key


@dataclass
class GlobalSelectionPolicy:
    """The composed manager-side policy: filter, sort, truncate to TopN.

    Filters and the sort key are injectable so applications can "flexibly
    combine/modify [policies] to prioritize available edge nodes towards
    different application requirements" (§IV-B).
    """

    geo_filter: GeoProximityFilter = GeoProximityFilter()
    sort_key_factory: Callable[
        [DiscoveryQuery], Callable[[NodeStatus], object]
    ] = availability_sort_key
    #: Optional extra predicate, e.g. "dedicated nodes only".
    node_predicate: Optional[Callable[[NodeStatus], bool]] = None

    def select(
        self,
        query: DiscoveryQuery,
        nodes: Optional[Sequence[NodeStatus]] = None,
        *,
        index: Optional[GeohashSpatialIndex] = None,
    ) -> Tuple[List[str], bool]:
        """Produce the TopN candidate node ids for ``query``.

        Candidates come either from ``nodes`` (a materialized status
        list, linearly scanned — the seed behaviour, still used by
        baselines and parity tests) or from ``index`` (the manager's
        spatial index; the metro-scale fast path). Exactly one source
        must be given. Both sources produce bit-identical results for
        the same registry contents: the geo prefilters differ, but the
        exact haversine cut and the total-order sort key (which breaks
        ties by node id) do not.

        Returns:
            (node id list, widened flag). The list may be shorter than
            TopN when the system simply has fewer nodes.
        """
        if (nodes is None) == (index is None):
            raise TypeError("select() needs exactly one of `nodes` or `index`")
        if index is not None:
            candidates, widened = self.geo_filter.apply_indexed(
                query.point,
                index,
                min_candidates=query.top_n,
                exclude=query.exclude,
                predicate=self.node_predicate,
            )
        else:
            pool = [n for n in nodes if n.node_id not in query.exclude]
            if self.node_predicate is not None:
                pool = [n for n in pool if self.node_predicate(n)]
            candidates, widened = self.geo_filter.apply(
                query.point, pool, min_candidates=query.top_n
            )
        # nsmallest(k) is documented to equal sorted(...)[:k]; with the
        # node-id tie-breaker in the key the TopN is deterministic and
        # independent of candidate order, at O(C log k) instead of a
        # full O(C log C) sort.
        best = heapq.nsmallest(
            query.top_n, candidates, key=self.sort_key_factory(query)
        )
        return [n.node_id for n in best], widened

    def select_partial(
        self,
        query: DiscoveryQuery,
        *,
        index: GeohashSpatialIndex,
        radius_km: float,
    ) -> Tuple[int, List[NodeStatus]]:
        """One shard's answer to one fixed-radius discovery phase.

        Returns ``(count, local TopN statuses)`` where ``count`` is the
        exact number of in-radius candidates. The cross-shard merge in
        ``repro.controlplane.router`` is bit-identical to :meth:`select`
        because (a) summed counts replay the widening comparisons
        exactly, and (b) any member of the global TopN is beaten by
        fewer than TopN candidates globally — hence by fewer than TopN
        within its own shard — so it appears in its shard's local TopN.
        """
        candidates = self.geo_filter.within_indexed(
            query.point,
            index,
            radius_km,
            exclude=query.exclude,
            predicate=self.node_predicate,
        )
        best = heapq.nsmallest(
            query.top_n, candidates, key=self.sort_key_factory(query)
        )
        return len(candidates), best
