"""Manager-side global edge selection (step 1 of the 2-step approach).

"We first apply a geo-proximity filter to rule out unqualified nodes, and
then prioritize the local candidates based on resource availability,
network affiliation and user preferences. Specifically in geo-proximity
search, we use GeoHash to identify a wider-range geographical area to
include remote nodes which may be useful as a last resort" (§IV-B).

The policy is deliberately coarse: "the global edge selection of our
2-step approach is coarse-grained with high tolerance to edge selection
inaccuracy and mismatch" — final accuracy comes from client probing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.messages import DiscoveryQuery, NodeStatus
from repro.geo import geohash as gh
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class GeoProximityFilter:
    """GeoHash-backed proximity filter with a widened fallback.

    Nodes are first matched against the 3x3 GeoHash cell block covering
    ``radius_km`` around the user. If fewer than ``min_candidates``
    survive, the search widens to ``wide_radius_km`` — the paper's
    "remote nodes ... useful as a last resort".
    """

    radius_km: float = 80.0
    wide_radius_km: float = 400.0
    min_candidates: int = 1

    def __post_init__(self) -> None:
        if self.radius_km <= 0 or self.wide_radius_km < self.radius_km:
            raise ValueError("need 0 < radius_km <= wide_radius_km")
        if self.min_candidates < 0:
            raise ValueError("min_candidates must be >= 0")

    def apply(
        self,
        user_point: GeoPoint,
        nodes: Sequence[NodeStatus],
        min_candidates: Optional[int] = None,
    ) -> Tuple[List[NodeStatus], bool]:
        """Return (surviving nodes, widened?).

        ``min_candidates`` (defaulting to the filter's own) is normally
        the query's TopN: a candidate list shorter than TopN silently
        strips the user of backup nodes, so remote nodes — "useful as a
        last resort" — are pulled in whenever the local area cannot
        fill the list.
        """
        needed = self.min_candidates if min_candidates is None else min_candidates
        local = self._within(user_point, nodes, self.radius_km)
        if len(local) >= needed:
            return local, False
        wide = self._within(user_point, nodes, self.wide_radius_km)
        if len(wide) > len(local):
            return wide, True
        return local, False

    def _within(
        self, user_point: GeoPoint, nodes: Sequence[NodeStatus], radius_km: float
    ) -> List[NodeStatus]:
        # GeoHash pre-filter: candidate cells covering the radius...
        cells = set(gh.covering_cells(user_point, radius_km))
        precision = len(next(iter(cells)))
        prefiltered = [
            n for n in nodes if n.geohash[:precision] in cells
        ]
        # ... then an exact haversine cut (cells overshoot the disc).
        return [
            n for n in prefiltered if user_point.distance_km(n.point) <= radius_km
        ]


#: Score bonus (in free-core units) for sharing the user's ISP tag.
AFFILIATION_BONUS = 2.0
#: Score penalty per km of distance (free-core units). Small by design:
#: the manager nudges toward nearby nodes but lets availability dominate.
DISTANCE_PENALTY_PER_KM = 0.02


def availability_sort_key(
    query: DiscoveryQuery,
) -> Callable[[NodeStatus], Tuple[float, str]]:
    """Weighted-score sort key prioritizing candidates for a user.

    Combines the paper's three global-selection signals — resource
    availability, network affiliation, geo-proximity — into one score
    (higher is better)::

        score = free_cores + AFFILIATION_BONUS·same_isp
                − DISTANCE_PENALTY_PER_KM·distance

    A *weighted* blend matters: a lexicographic affiliation-first order
    would hand every user a candidate list of only its same-ISP
    volunteers, hiding well-provisioned dedicated nodes entirely once
    ``TopN`` is small. Coarse mis-scoring is fine (clients probe), but
    systematically excluding a node class is not. Node id breaks ties so
    the ordering is deterministic.
    """

    user_point = query.point

    def key(node: NodeStatus) -> Tuple[float, str]:
        score = node.availability_score
        if query.isp is not None and node.isp == query.isp:
            score += AFFILIATION_BONUS
        score -= DISTANCE_PENALTY_PER_KM * user_point.distance_km(node.point)
        return (-score, node.node_id)

    return key


@dataclass
class GlobalSelectionPolicy:
    """The composed manager-side policy: filter, sort, truncate to TopN.

    Filters and the sort key are injectable so applications can "flexibly
    combine/modify [policies] to prioritize available edge nodes towards
    different application requirements" (§IV-B).
    """

    geo_filter: GeoProximityFilter = GeoProximityFilter()
    sort_key_factory: Callable[
        [DiscoveryQuery], Callable[[NodeStatus], object]
    ] = availability_sort_key
    #: Optional extra predicate, e.g. "dedicated nodes only".
    node_predicate: Optional[Callable[[NodeStatus], bool]] = None

    def select(
        self, query: DiscoveryQuery, nodes: Sequence[NodeStatus]
    ) -> Tuple[List[str], bool]:
        """Produce the TopN candidate node ids for ``query``.

        Returns:
            (node id list, widened flag). The list may be shorter than
            TopN when the system simply has fewer nodes.
        """
        pool = [n for n in nodes if n.node_id not in query.exclude]
        if self.node_predicate is not None:
            pool = [n for n in pool if self.node_predicate(n)]
        candidates, widened = self.geo_filter.apply(
            query.point, pool, min_candidates=query.top_n
        )
        candidates.sort(key=self.sort_key_factory(query))
        return [n.node_id for n in candidates[: query.top_n]], widened
