"""The application user (client) — simulation driver over the protocol core.

An :class:`EdgeClient` runs three concurrent activities on the simulator:

1. **The offloading loop** — sends encoded frames to the attached edge
   node at the adaptive rate, measures end-to-end latency per response,
   and feeds the rate controller. While unattached, frames accumulate in
   a bounded client-side backlog and are flushed on (re)attach, so
   downtime shows up as latency spikes exactly as in Fig. 4.
2. **The periodic selection round** (Algorithm 2) — every ``T_probing``.
3. **Failure handling** — walking the backup list on a broken
   connection, falling back to reactive re-discovery only when every
   backup is dead too (counted as a *failure*, Fig. 10b).

All the *decisions* in 2 and 3 — ranking, dwell, hysteresis, join
retry, backup adoption, the failover walk — live in
:class:`repro.protocol.selection.SelectionMachine`; this class is the
sim-side **driver**: it translates kernel callbacks into protocol input
events, executes the returned effects (network sends with sampled RTT
delays, timers, trace emission), and owns the pure-I/O machinery —
frames, links, probing measurements, the backlog.

Baselines (geo-proximity, resource-aware WRR, ...) subclass this and
override only the selection round — frames, links, adaptation and
failure detection are shared machinery, so every strategy pays identical
costs elsewhere.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.controlplane.errors import ControlPlaneUnavailable
from repro.core.config import SystemConfig
from repro.core.messages import CandidateList, DiscoveryQuery
from repro.core.policies.local_policies import LocalSelectionPolicy
from repro.policy.base import SelectionPolicy
from repro.core.probing import ProbeOutcome
from repro.net.link import CONNECTION_SETUP_RTTS, Link
from repro.obs.events import (
    FrameDone,
    FrameStart,
    PhaseSpan,
    ProbeAnswered,
    ProbeSent,
    UncoveredFailure,
)
from repro.protocol.effects import (
    Attached,
    Effect,
    EmitTrace,
    FlushBacklog,
    ProbeCandidates,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    SendLeave,
    StartTimer,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    DiscoveryFailed,
    EdgeFailed,
    FailoverResult,
    JoinResult,
    ProbesCompleted,
    ProtocolEvent,
    RoundStarted,
)
from repro.protocol.failure_monitor import FailureMonitor
from repro.protocol.selection import SelectionConfig, SelectionMachine
from repro.sim.kernel import TimerHandle
from repro.workload.adaptive import AdaptiveRateController
from repro.workload.ar import ARApplication
from repro.workload.frames import Frame, FrameSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import EdgeSystem
    from repro.faults.injector import MessageDecision


@dataclass
class ClientStats:
    """Per-client counters surfaced to experiments."""

    frames_sent: int = 0
    frames_completed: int = 0
    frames_lost: int = 0
    probes_sent: int = 0
    discovery_queries: int = 0
    joins_accepted: int = 0
    joins_rejected: int = 0
    switches: int = 0
    covered_failovers: int = 0
    uncovered_failures: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            raise ValueError("no completed frames yet")
        return sum(self.latencies_ms) / len(self.latencies_ms)


@runtime_checkable
class ClientLike(Protocol):
    """The contract :class:`~repro.core.system.EdgeSystem` requires of a
    registered client.

    Every client — :class:`EdgeClient`, the baselines, or a custom
    strategy — must expose this surface; ``EdgeSystem.add_client``
    validates it structurally at registration. The system never reaches
    into client internals beyond these members: in particular, failure
    notification asks the *client* whether it observes a node
    (:meth:`observes_node`) rather than duck-typing over
    ``failure_monitor``/``links`` attributes, which remain optional
    implementation details of :class:`EdgeClient`.
    """

    user_id: str

    def start(self) -> None:
        """Begin operating on the system's simulator."""
        ...

    def observes_node(self, node_id: str) -> bool:
        """True if this client holds any relationship to ``node_id``
        (open connection, current attachment, or backup) through which
        it would eventually notice the node failing."""
        ...

    def on_edge_failure(self, node_id: str) -> None:
        """Deliver a broken-connection notification for ``node_id``."""
        ...


class EdgeClient:
    """A user device running the client-centric edge selection.

    Args:
        system: owning :class:`~repro.core.system.EdgeSystem`.
        user_id: unique id; must match a registered network endpoint.
        app: application profile (defaults to the system's).
        local_policy: a :class:`~repro.policy.base.SelectionPolicy` or
            legacy ranking callable; defaults to the system/config
            resolved policy (``EdgeSystem.make_selection_policy``),
            which honours ``ScenarioBuilder.policy(...)`` and
            ``SystemConfig.policy_spec`` including QoS wrapping.
        proactive_connections: keep standing connections to backups
            (False reproduces the reactive "re-connect" baseline).
        backlog_limit: max frames buffered while unattached.
    """

    def __init__(
        self,
        system: "EdgeSystem",
        user_id: str,
        *,
        app: Optional[ARApplication] = None,
        local_policy: "Optional[SelectionPolicy | LocalSelectionPolicy]" = None,
        proactive_connections: bool = True,
        backlog_limit: int = 64,
    ) -> None:
        self.system = system
        self.user_id = user_id
        self.config: SystemConfig = system.config
        self.app = app or system.app
        self.proactive_connections = proactive_connections
        self.controller = AdaptiveRateController(self.app)
        rng = system.streams.get(f"client.{user_id}")
        self.frame_source = FrameSource(user_id, self.app, rng)
        self._rng = rng

        #: The sans-IO protocol core this driver executes.
        self._machine = SelectionMachine(
            user_id,
            local_policy
            if local_policy is not None
            else system.make_selection_policy(user_id),
            SelectionConfig(
                top_n=self.config.top_n,
                min_dwell_ms=self.config.min_dwell_ms,
                switch_penalty_ms=self.config.switch_penalty_ms,
                switch_penalty_fraction=self.config.switch_penalty_fraction,
                max_discovery_retries=self.config.max_discovery_retries,
            ),
            detail_guard=lambda: self.system.trace.enabled,
        )
        self.links: Dict[str, Link] = {}
        self.stats = ClientStats()
        #: Live robustness knob (§IV-E): an attached AdaptiveRobustness
        #: controller may move it with observed churn (``top_n`` lives on
        #: the machine and is mirrored below).
        self.probing_period_ms = self.config.probing_period_ms
        self.robustness_controller: Optional[object] = None
        self._backlog: Deque[Frame] = deque(maxlen=backlog_limit)
        self._probe_event: Optional[TimerHandle] = None
        self._offload_timer: Optional[TimerHandle] = None
        self._stopped = False
        # Interned hot-path event labels. The frame loop schedules ~4
        # kernel events per frame; rebuilding the same f-string label on
        # every call was measurable at metro scale, so each label is
        # built once per client here.
        uid = self.user_id
        self._lbl_probe = uid + ".probe"
        self._lbl_retry = uid + ".retry"
        self._lbl_discover_timeout = uid + ".discover-timeout"
        self._lbl_discover = uid + ".discover"
        self._lbl_probed = uid + ".probed"
        self._lbl_join = uid + ".join"
        self._lbl_failover = uid + ".failover"
        self._lbl_frame = uid + ".frame"
        self._lbl_dup = uid + ".dup"
        self._lbl_resp = uid + ".resp"
        self._lbl_uplink = uid + ".uplink"
        self._lbl_leave = uid + ".leave"

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver for experiments,
    # baselines and the adaptive robustness controller.
    # ------------------------------------------------------------------
    @property
    def local_policy(self) -> SelectionPolicy:
        return self._machine.policy

    @local_policy.setter
    def local_policy(
        self, policy: "SelectionPolicy | LocalSelectionPolicy"
    ) -> None:
        self._machine.policy = policy

    @property
    def current_edge(self) -> Optional[str]:
        return self._machine.current_edge

    @current_edge.setter
    def current_edge(self, node_id: Optional[str]) -> None:
        self._machine.current_edge = node_id

    @property
    def top_n(self) -> int:
        return self._machine.top_n

    @top_n.setter
    def top_n(self, value: int) -> None:
        self._machine.top_n = value

    @property
    def failure_monitor(self) -> FailureMonitor:
        return self._machine.monitor

    @failure_monitor.setter
    def failure_monitor(self, monitor: FailureMonitor) -> None:
        self._machine.monitor = monitor

    @property
    def _round_in_progress(self) -> bool:
        return self._machine.round_in_progress

    @_round_in_progress.setter
    def _round_in_progress(self, value: bool) -> None:
        self._machine.round_in_progress = value

    @property
    def _last_join_ms(self) -> float:
        return self._machine.last_join_ms

    @_last_join_ms.setter
    def _last_join_ms(self, value: float) -> None:
        self._machine.last_join_ms = value

    @property
    def _retries(self) -> int:
        return self._machine._retries

    @_retries.setter
    def _retries(self, value: int) -> None:
        self._machine._retries = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Join the system: first selection round + periodic timers."""
        self._begin_selection_round()
        self._schedule_probe_round()
        self._schedule_next_frame(self.controller.interval_ms)

    def _schedule_probe_round(self) -> None:
        """Self-rescheduling probing timer.

        Self-rescheduling (rather than a fixed periodic timer) lets the
        probing cadence follow ``probing_period_ms`` when an adaptive
        robustness controller moves it between rounds.
        """
        if self._stopped:
            return
        delay = self.probing_period_ms
        if self.config.probing_jitter_ms > 0:
            delay += self._rng.uniform(
                -self.config.probing_jitter_ms, self.config.probing_jitter_ms
            )
        delay = max(delay, 100.0)

        def fire() -> None:
            if self._stopped:
                return
            self._begin_selection_round()
            self._schedule_probe_round()

        self._probe_event = self.system.sim.schedule(
            delay, fire, label=self._lbl_probe
        )

    def stop(self) -> None:
        """Leave the system (task finished)."""
        if self._stopped:
            return
        self._stopped = True
        if self._probe_event is not None:
            self._probe_event.cancel()
        if self._offload_timer is not None:
            self._offload_timer.cancel()
        if self.current_edge is not None:
            self._send_leave(self.current_edge, reason="finish")
            self.current_edge = None

    @property
    def attached(self) -> bool:
        return self.current_edge is not None

    # ------------------------------------------------------------------
    # Protocol-event feed + effect execution
    # ------------------------------------------------------------------
    def _feed(self, event: ProtocolEvent) -> None:
        """Advance the protocol machine and execute what it asks for."""
        if self._stopped:
            return
        self._run_effects(self._machine.handle(event))

    def _run_effects(self, effects: List[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, EmitTrace):
                self.system.trace.emit(effect.event)
                if isinstance(effect.event, UncoveredFailure):
                    self.stats.uncovered_failures += 1
            elif isinstance(effect, SendDiscovery):
                self.stats.discovery_queries += 1
                self._perform_discovery(effect)
            elif isinstance(effect, ProbeCandidates):
                self._probe_candidates(list(effect.node_ids))
            elif isinstance(effect, SendJoin):
                self._perform_join(effect.outcome)
            elif isinstance(effect, SendLeave):
                self._send_leave(effect.node_id, reason=effect.reason)
            elif isinstance(effect, SendFailoverJoin):
                self._perform_failover_join(effect.node_id)
            elif isinstance(effect, Attached):
                if effect.via == "failover":
                    self.stats.covered_failovers += 1
                elif effect.previous is not None and (
                    effect.previous != effect.node_id
                ):
                    self.stats.switches += 1
                self._ensure_link(effect.node_id, effect.rtt_ms)
            elif isinstance(effect, UpdateBackups):
                if self.proactive_connections:
                    for outcome in effect.outcomes:
                        self._ensure_link(outcome.node_id, outcome.d_prop_ms)
                self._prune_links()
            elif isinstance(effect, FlushBacklog):
                self._flush_backlog()
            elif isinstance(effect, StartTimer):
                self.system.sim.schedule(
                    effect.delay_ms,
                    self._begin_selection_round,
                    label=self._lbl_retry,
                )
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")

    def _end_round(self) -> None:
        """Close the current selection round (used by baseline subclasses
        that bypass the protocol machine)."""
        self._round_in_progress = False

    # ------------------------------------------------------------------
    # Fault interception (repro.faults)
    # ------------------------------------------------------------------
    #: How long an unanswered discovery request waits before the driver
    #: reports :class:`~repro.protocol.events.DiscoveryFailed` (the live
    #: runtime's retry budget plays the same role on the wall clock).
    DISCOVERY_TIMEOUT_MS = 1_000.0

    def _decide_fault(self, dst: str, op: str) -> Optional["MessageDecision"]:
        """One injector verdict for a logical message exchange, or None.

        The sim intercepts each exchange *once at send time* — the
        verdict covers the round trip, so a rule matching either
        direction of a link should name the client as ``src``. Manager
        outages and symmetric partitions match regardless.
        """
        faults = self.system.faults
        if faults is None:
            return None
        return faults.decide(self.user_id, dst, op, self.system.sim.now)

    # ------------------------------------------------------------------
    # Selection round I/O (Algorithm 2) — overridden by baselines
    # ------------------------------------------------------------------
    def _begin_selection_round(self) -> None:
        if self._stopped or self._round_in_progress:
            return
        self._feed(RoundStarted(self.system.sim.now))

    def _perform_discovery(self, effect: SendDiscovery) -> None:
        """Edge discovery: one round trip to the Central Manager."""
        endpoint = self.system.topology.endpoint(self.user_id)
        query = DiscoveryQuery(
            user_id=self.user_id,
            lat=endpoint.point.lat,
            lon=endpoint.point.lon,
            top_n=effect.top_n,
            isp=endpoint.isp,
            exclude=effect.exclude,
        )
        rtt = self.system.topology.rtt_ms(self.user_id, self.system.manager_id)
        verdict = self._decide_fault(self.system.manager_id, "discover")
        if verdict is not None:
            if not verdict.deliver:
                # Black-holed: the client only learns via its timeout.
                self.system.sim.schedule(
                    self.DISCOVERY_TIMEOUT_MS,
                    lambda: self._feed(
                        DiscoveryFailed(self.system.sim.now, reason=verdict.kind)
                    ),
                    label=self._lbl_discover_timeout,
                )
                return
            rtt += verdict.extra_delay_ms
        self.system.sim.schedule(
            rtt,
            lambda: self._discover_at_manager(query),
            label=self._lbl_discover,
        )

    def _discover_at_manager(self, query: DiscoveryQuery) -> None:
        """The query reached the manager: answer, or shard unavailable.

        A control-plane shard with no serving replica (primary killed,
        standby not yet promoted) behaves exactly like an unreachable
        manager: the client only learns via its discovery timeout and
        then rides the degraded-fallback path — never an empty
        candidate list.
        """
        try:
            candidates = self.system.manager.discover(query)
        except ControlPlaneUnavailable as exc:
            # Bind now: `exc` is unbound once the except block exits,
            # but the lambda fires a discovery-timeout later.
            reason = exc.reason
            self.system.sim.schedule(
                self.DISCOVERY_TIMEOUT_MS,
                lambda: self._feed(
                    DiscoveryFailed(self.system.sim.now, reason=reason)
                ),
                label=self._lbl_discover_timeout,
            )
            return
        self._deliver_candidates(candidates)

    def _deliver_candidates(self, candidates: CandidateList) -> None:
        self._feed(
            CandidatesReceived(
                self.system.sim.now, candidates.node_ids, candidates.widened
            )
        )

    def _probe_candidates(self, node_ids: List[str]) -> None:
        """Probe all candidates in parallel; collect when the slowest returns.

        Each probe measures ``D_prop`` (the sampled RTT *is* the
        measurement) and reads the candidate's what-if cache. Dead
        candidates simply never answer and are dropped when the round
        closes. Probing a candidate also warms a connection to it —
        this is how proactive backup connections get established.
        """
        topology = self.system.topology
        trace = self.system.trace
        outcomes: List[ProbeOutcome] = []
        max_rtt = 0.0
        samples = self.config.rtt_probe_samples
        for node_id in node_ids:
            self.stats.probes_sent += 1
            trace.emit(ProbeSent(self.system.sim.now, self.user_id, node_id))
            if not topology.has_endpoint(node_id):
                continue
            verdict = self._decide_fault(node_id, "probe")
            if verdict is not None and not verdict.deliver:
                continue  # probe times out silently, like a dead node
            pings = [
                topology.rtt_ms(self.user_id, node_id) for _ in range(samples)
            ]
            rtt = sum(pings) / len(pings)
            if verdict is not None:
                rtt += verdict.extra_delay_ms
            max_rtt = max(max_rtt, rtt)
            node = self.system.nodes.get(node_id)
            if node is None:
                continue
            reply = node.process_probe()
            if reply is None:
                continue  # dead node: probe times out silently
            if trace.enabled:
                trace.emit(
                    ProbeAnswered(
                        self.system.sim.now + rtt,
                        self.user_id,
                        node_id,
                        rtt,
                        reply.what_if_ms,
                    )
                )
            outcomes.append(
                ProbeOutcome(
                    node_id=node_id,
                    d_prop_ms=rtt,
                    d_proc_ms=reply.what_if_ms,
                    seq_num=reply.seq_num,
                    attached_users=reply.attached_users,
                    current_proc_ms=reply.current_proc_ms,
                    stay_ms=reply.stay_ms or reply.what_if_ms,
                    probed_at_ms=self.system.sim.now,
                )
            )
            if self.proactive_connections:
                self._ensure_link(node_id, rtt)
        self.system.sim.schedule(
            max_rtt if max_rtt > 0 else 1.0,
            lambda: self._feed(
                ProbesCompleted(self.system.sim.now, tuple(outcomes))
            ),
            label=self._lbl_probed,
        )

    def _perform_join(self, best: ProbeOutcome) -> None:
        """``Join()`` the chosen candidate, echoing its probed seqNum."""
        node = self.system.nodes.get(best.node_id)
        rtt = self.system.topology.rtt_ms(self.user_id, best.node_id)
        verdict = self._decide_fault(best.node_id, "join")
        dropped = verdict is not None and not verdict.deliver
        if verdict is not None and verdict.deliver:
            rtt += verdict.extra_delay_ms

        def deliver() -> None:
            now = self.system.sim.now
            if dropped or node is None or not node.alive:
                # A dropped join is indistinguishable from a dead node:
                # no answer before the timeout.
                accepted, node_alive = False, False
            else:
                reply = node.join(self.user_id, best.seq_num, self.controller.fps)
                accepted, node_alive = reply.accepted, True
            if accepted:
                self.stats.joins_accepted += 1
            elif node_alive:
                self.stats.joins_rejected += 1
            self._feed(
                JoinResult(
                    now,
                    best.node_id,
                    accepted,
                    attempted_at=now,
                    node_alive=node_alive,
                )
            )

        self.system.sim.schedule(rtt, deliver, label=self._lbl_join)

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _ensure_link(self, node_id: str, rtt_ms: float) -> Link:
        link = self.links.get(node_id)
        if link is None:
            link = Link(self.user_id, node_id, rtt_ms)
            link.mark_up(self.system.sim.now)  # warmed by the probe exchange
            self.links[node_id] = link
        else:
            link.rtt_ms = rtt_ms
        return link

    def _prune_links(self) -> None:
        """Close connections to nodes that are neither current nor backup."""
        keep = set(self.failure_monitor.backups)
        if self.current_edge is not None:
            keep.add(self.current_edge)
        for node_id in list(self.links):
            if node_id not in keep:
                del self.links[node_id]

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def observes_node(self, node_id: str) -> bool:
        """See :meth:`ClientLike.observes_node`: connection, attachment
        or backup-list membership all make a failure observable."""
        return (
            node_id in self.links
            or node_id == self.current_edge
            or node_id in self.failure_monitor.backups
        )

    def on_edge_failure(self, node_id: str) -> None:
        """A connection to ``node_id`` broke (delivered by the system
        ``failure_detection_ms`` after the node died)."""
        if self._stopped:
            return
        self.links.pop(node_id, None)
        self._feed(EdgeFailed(self.system.sim.now, node_id))

    def _perform_failover_join(self, backup_id: str) -> None:
        """``Unexpected_join()`` one backup after the connection delay."""
        node = self.system.nodes.get(backup_id)
        rtt = (
            self.system.topology.rtt_ms(self.user_id, backup_id)
            if self.system.topology.has_endpoint(backup_id)
            else self.config.common_rtt_ms
        )
        if not self.proactive_connections:
            rtt += CONNECTION_SETUP_RTTS * rtt  # fresh connection first
        verdict = self._decide_fault(backup_id, "unexpected_join")
        dropped = verdict is not None and not verdict.deliver
        if verdict is not None and verdict.deliver:
            rtt += verdict.extra_delay_ms

        def deliver() -> None:
            accepted = (
                not dropped
                and node is not None
                and node.alive
                and node.unexpected_join(self.user_id, self.controller.fps)
            )
            self._feed(
                FailoverResult(
                    self.system.sim.now, backup_id, accepted, rtt_ms=rtt
                )
            )

        self.system.sim.schedule(rtt, deliver, label=self._lbl_failover)

    # ------------------------------------------------------------------
    # Offloading loop
    # ------------------------------------------------------------------
    def _schedule_next_frame(self, delay_ms: float) -> None:
        if self._stopped:
            return
        self.system.sim.schedule(
            delay_ms, self._offload_tick, label=self._lbl_frame
        )

    def _offload_tick(self) -> None:
        if self._stopped:
            return
        frame = self.frame_source.next_frame(self.system.sim.now)
        if self.attached:
            self._send_frame(frame)
        else:
            self._backlog.append(frame)
        self._schedule_next_frame(self.controller.interval_ms)

    #: Frames older than this are useless to an AR application (the scene
    #: has moved on); they are dropped as lost rather than offloaded.
    FRAME_STALENESS_MS = 2_000.0

    def _flush_backlog(self) -> None:
        """Send frames buffered during downtime (their latency includes it).

        Frames that went stale during the outage are dropped and counted
        as lost — replaying seconds-old camera frames after a reconnect
        would only poison the queue and tell the user about the past.
        """
        now = self.system.sim.now
        while self._backlog and self.attached:
            frame = self._backlog.popleft()
            if now - frame.created_ms > self.FRAME_STALENESS_MS:
                self._record_lost(frame, self.current_edge or "none")
                continue
            self._send_frame(frame)

    def _send_frame(self, frame: Frame) -> None:
        edge_id = self.current_edge
        assert edge_id is not None
        node = self.system.nodes.get(edge_id)
        topology = self.system.topology
        trace = self.system.trace
        self.stats.frames_sent += 1
        if node is None or not topology.has_endpoint(edge_id):
            self._record_lost(frame, edge_id)
            return
        verdict = self._decide_fault(edge_id, "frame")
        if verdict is not None and not verdict.deliver:
            self._record_lost(frame, edge_id)
            return
        if trace.enabled:
            trace.emit(
                FrameStart(self.system.sim.now, self.user_id, edge_id,
                           frame.frame_id)
            )
        transfer = topology.transfer_ms(self.user_id, edge_id, frame.size_bytes)
        uplink_delay = topology.one_way_ms(self.user_id, edge_id) + transfer
        if verdict is not None:
            uplink_delay += verdict.extra_delay_ms
            for _ in range(verdict.copies - 1):
                # Duplicated frames still load the server's queue; the
                # client ignores the redundant response.
                self.system.sim.schedule_at(
                    self.system.sim.now + uplink_delay,
                    lambda: node.receive_frame(frame, self.system.sim.now),
                    label=self._lbl_dup,
                )
        # Time the frame spent in the client-side backlog before leaving
        # (0 for frames sent the moment they were captured) — part of the
        # queue phase of the latency decomposition.
        backlog_ms = self.system.sim.now - frame.created_ms
        arrival = self.system.sim.now + uplink_delay

        def arrive() -> None:
            completed = node.receive_frame(frame, self.system.sim.now)
            if completed is None:
                self._record_lost(frame, edge_id)
                return
            downlink = topology.one_way_ms(edge_id, self.user_id)

            def respond() -> None:
                if not node.alive and node.failed_at_ms is not None and (
                    node.failed_at_ms < completed.completion_ms
                ):
                    # The node died while the frame was queued/processing.
                    self._record_lost(frame, edge_id)
                    return
                now = self.system.sim.now
                latency = now - frame.created_ms
                self.stats.frames_completed += 1
                self.stats.latencies_ms.append(latency)
                if trace.enabled:
                    # The three spans sum exactly to `latency`:
                    # latency = backlog + uplink + wait + service + downlink.
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "rtt",
                                  uplink_delay + downlink)
                    )
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "queue",
                                  backlog_ms + completed.wait_ms)
                    )
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "process",
                                  completed.service_ms)
                    )
                trace.emit(
                    FrameDone(now, self.user_id, edge_id, frame.frame_id,
                              frame.created_ms, latency)
                )
                self.controller.observe(latency)

            self.system.sim.schedule_at(
                completed.completion_ms + downlink,
                respond,
                label=self._lbl_resp,
            )

        self.system.sim.schedule_at(arrival, arrive, label=self._lbl_uplink)

    def _record_lost(self, frame: Frame, edge_id: str) -> None:
        self.stats.frames_lost += 1
        self.system.trace.emit(
            FrameDone(self.system.sim.now, self.user_id, edge_id,
                      frame.frame_id, frame.created_ms, None)
        )

    # ------------------------------------------------------------------
    def _send_leave(self, node_id: str, reason: str) -> None:
        node = self.system.nodes.get(node_id)
        if node is None:
            return
        verdict = self._decide_fault(node_id, "leave")
        if verdict is not None and not verdict.deliver:
            return  # the node never hears the goodbye
        delay = (
            self.system.topology.one_way_ms(self.user_id, node_id)
            if self.system.topology.has_endpoint(node_id)
            else 1.0
        )
        if verdict is not None:
            delay += verdict.extra_delay_ms
        self.system.sim.schedule(
            delay, lambda: node.leave(self.user_id), label=self._lbl_leave
        )

    def __repr__(self) -> str:
        return (
            f"EdgeClient({self.user_id}, edge={self.current_edge}, "
            f"backups={self.failure_monitor.backups})"
        )
