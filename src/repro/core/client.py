"""The application user (client) — the heart of the client-centric approach.

An :class:`EdgeClient` runs three concurrent activities on the simulator:

1. **The offloading loop** — sends encoded frames to the attached edge
   node at the adaptive rate, measures end-to-end latency per response,
   and feeds the rate controller. While unattached, frames accumulate in
   a bounded client-side backlog and are flushed on (re)attach, so
   downtime shows up as latency spikes exactly as in Fig. 4.
2. **The periodic selection round** (Algorithm 2) — every ``T_probing``:
   edge discovery at the Central Manager, parallel ``RTT_probe`` +
   ``Process_probe`` of all candidates, local policy sort, hysteretic
   switch via ``Join()`` (repeating from discovery on rejection), and
   backup-list refresh with proactive connections.
3. **Failure handling** — on a broken connection to the attached node,
   walk the backup list with ``Unexpected_join()``; only when every
   backup is dead too does the client fall back to reactive re-discovery
   (counted as a *failure*, Fig. 10b).

Baselines (geo-proximity, resource-aware WRR, ...) subclass this and
override only the selection round — frames, links, adaptation and
failure detection are shared machinery, so every strategy pays identical
costs elsewhere.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    runtime_checkable,
)

from repro.core.config import SystemConfig
from repro.core.failure_monitor import FailureMonitor
from repro.core.messages import CandidateList, DiscoveryQuery
from repro.core.policies.local_policies import LocalSelectionPolicy, policy_for
from repro.core.probing import ProbeOutcome
from repro.net.link import CONNECTION_SETUP_RTTS, Link
from repro.obs.events import (
    CoveredFailover,
    DiscoveryIssued,
    DiscoveryReturned,
    FrameDone,
    FrameStart,
    JoinAccept,
    JoinAttempt,
    JoinReject,
    PhaseSpan,
    ProbeAnswered,
    ProbeSent,
    Switch,
    UncoveredFailure,
)
from repro.sim.kernel import TimerHandle
from repro.workload.adaptive import AdaptiveRateController
from repro.workload.ar import ARApplication
from repro.workload.frames import Frame, FrameSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import EdgeSystem


@dataclass
class ClientStats:
    """Per-client counters surfaced to experiments."""

    frames_sent: int = 0
    frames_completed: int = 0
    frames_lost: int = 0
    probes_sent: int = 0
    discovery_queries: int = 0
    joins_accepted: int = 0
    joins_rejected: int = 0
    switches: int = 0
    covered_failovers: int = 0
    uncovered_failures: int = 0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        if not self.latencies_ms:
            raise ValueError("no completed frames yet")
        return sum(self.latencies_ms) / len(self.latencies_ms)


@runtime_checkable
class ClientLike(Protocol):
    """The contract :class:`~repro.core.system.EdgeSystem` requires of a
    registered client.

    Every client — :class:`EdgeClient`, the baselines, or a custom
    strategy — must expose this surface; ``EdgeSystem.add_client``
    validates it structurally at registration. The system never reaches
    into client internals beyond these members: in particular, failure
    notification asks the *client* whether it observes a node
    (:meth:`observes_node`) rather than duck-typing over
    ``failure_monitor``/``links`` attributes, which remain optional
    implementation details of :class:`EdgeClient`.
    """

    user_id: str

    def start(self) -> None:
        """Begin operating on the system's simulator."""
        ...

    def observes_node(self, node_id: str) -> bool:
        """True if this client holds any relationship to ``node_id``
        (open connection, current attachment, or backup) through which
        it would eventually notice the node failing."""
        ...

    def on_edge_failure(self, node_id: str) -> None:
        """Deliver a broken-connection notification for ``node_id``."""
        ...


class EdgeClient:
    """A user device running the client-centric edge selection.

    Args:
        system: owning :class:`~repro.core.system.EdgeSystem`.
        user_id: unique id; must match a registered network endpoint.
        app: application profile (defaults to the system's).
        local_policy: ranking over probe outcomes; defaults to the
            config-selected LO/GO(/QoS) policy.
        proactive_connections: keep standing connections to backups
            (False reproduces the reactive "re-connect" baseline).
        backlog_limit: max frames buffered while unattached.
    """

    def __init__(
        self,
        system: "EdgeSystem",
        user_id: str,
        *,
        app: Optional[ARApplication] = None,
        local_policy: Optional[LocalSelectionPolicy] = None,
        proactive_connections: bool = True,
        backlog_limit: int = 64,
    ) -> None:
        self.system = system
        self.user_id = user_id
        self.config: SystemConfig = system.config
        self.app = app or system.app
        self.local_policy = local_policy or policy_for(
            self.config.use_global_overhead, self.config.qos_latency_ms
        )
        self.proactive_connections = proactive_connections
        self.controller = AdaptiveRateController(self.app)
        rng = system.streams.get(f"client.{user_id}")
        self.frame_source = FrameSource(user_id, self.app, rng)
        self._rng = rng

        self.current_edge: Optional[str] = None
        self.failure_monitor = FailureMonitor()
        self.links: Dict[str, Link] = {}
        self.stats = ClientStats()
        #: Live robustness knobs (§IV-E): start at the configured values;
        #: an attached AdaptiveRobustness controller may move them with
        #: observed churn.
        self.top_n = self.config.top_n
        self.probing_period_ms = self.config.probing_period_ms
        self.robustness_controller: Optional[object] = None
        self._backlog: Deque[Frame] = deque(maxlen=backlog_limit)
        self._round_in_progress = False
        self._retries = 0
        self._last_join_ms = float("-inf")
        self._probe_event = None
        self._offload_timer: Optional[TimerHandle] = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Join the system: first selection round + periodic timers."""
        self._begin_selection_round()
        self._schedule_probe_round()
        self._schedule_next_frame(self.controller.interval_ms)

    def _schedule_probe_round(self) -> None:
        """Self-rescheduling probing timer.

        Self-rescheduling (rather than a fixed periodic timer) lets the
        probing cadence follow ``probing_period_ms`` when an adaptive
        robustness controller moves it between rounds.
        """
        if self._stopped:
            return
        delay = self.probing_period_ms
        if self.config.probing_jitter_ms > 0:
            delay += self._rng.uniform(
                -self.config.probing_jitter_ms, self.config.probing_jitter_ms
            )
        delay = max(delay, 100.0)

        def fire() -> None:
            if self._stopped:
                return
            self._begin_selection_round()
            self._schedule_probe_round()

        self._probe_event = self.system.sim.schedule(
            delay, fire, label=f"{self.user_id}.probe"
        )

    def stop(self) -> None:
        """Leave the system (task finished)."""
        if self._stopped:
            return
        self._stopped = True
        if self._probe_event is not None:
            self._probe_event.cancel()
        if self._offload_timer is not None:
            self._offload_timer.cancel()
        if self.current_edge is not None:
            self._send_leave(self.current_edge, reason="finish")
            self.current_edge = None

    @property
    def attached(self) -> bool:
        return self.current_edge is not None

    # ------------------------------------------------------------------
    # Selection round (Algorithm 2) — overridden by baselines
    # ------------------------------------------------------------------
    def _begin_selection_round(self) -> None:
        if self._stopped or self._round_in_progress:
            return
        self._round_in_progress = True
        self._retries = 0
        self._send_discovery()

    def _send_discovery(self, exclude: tuple = ()) -> None:
        """Edge discovery: one round trip to the Central Manager."""
        self.stats.discovery_queries += 1
        self.system.trace.emit(
            DiscoveryIssued(self.system.sim.now, self.user_id)
        )
        endpoint = self.system.topology.endpoint(self.user_id)
        query = DiscoveryQuery(
            user_id=self.user_id,
            lat=endpoint.point.lat,
            lon=endpoint.point.lon,
            top_n=self.top_n,
            isp=endpoint.isp,
            exclude=exclude,
        )
        rtt = self.system.topology.rtt_ms(self.user_id, self.system.manager_id)
        self.system.sim.schedule(
            rtt,
            lambda: self._on_candidates(self.system.manager.discover(query)),
            label=f"{self.user_id}.discover",
        )

    def _on_candidates(self, candidates: CandidateList) -> None:
        if self._stopped:
            return
        if self.system.trace.enabled:
            self.system.trace.emit(
                DiscoveryReturned(
                    self.system.sim.now,
                    self.user_id,
                    candidates.node_ids,
                    widened=candidates.widened,
                )
            )
        if not candidates.node_ids:
            # Nothing available: end the round; the periodic timer (or a
            # short retry while detached) tries again.
            self._end_round()
            if not self.attached:
                self.system.sim.schedule(500.0, self._begin_selection_round)
            return
        node_ids = list(candidates.node_ids)
        # Algorithm 2 line 12 compares C[0] against Current, so Current is
        # always probed — even when the manager's availability sort
        # dropped it from the list (a node loaded by *this* user scores
        # low on availability, which must not force a blind switch).
        if self.current_edge is not None and self.current_edge not in node_ids:
            node_ids.append(self.current_edge)
        self._probe_candidates(node_ids)

    def _probe_candidates(self, node_ids: List[str]) -> None:
        """Probe all candidates in parallel; collect when the slowest returns.

        Each probe measures ``D_prop`` (the sampled RTT *is* the
        measurement) and reads the candidate's what-if cache. Dead
        candidates simply never answer and are dropped when the round
        closes. Probing a candidate also warms a connection to it —
        this is how proactive backup connections get established.
        """
        topology = self.system.topology
        trace = self.system.trace
        outcomes: List[ProbeOutcome] = []
        max_rtt = 0.0
        samples = self.config.rtt_probe_samples
        for node_id in node_ids:
            self.stats.probes_sent += 1
            trace.emit(ProbeSent(self.system.sim.now, self.user_id, node_id))
            if not topology.has_endpoint(node_id):
                continue
            pings = [
                topology.rtt_ms(self.user_id, node_id) for _ in range(samples)
            ]
            rtt = sum(pings) / len(pings)
            max_rtt = max(max_rtt, rtt)
            node = self.system.nodes.get(node_id)
            if node is None:
                continue
            reply = node.process_probe()
            if reply is None:
                continue  # dead node: probe times out silently
            if trace.enabled:
                trace.emit(
                    ProbeAnswered(
                        self.system.sim.now + rtt,
                        self.user_id,
                        node_id,
                        rtt,
                        reply.what_if_ms,
                    )
                )
            outcomes.append(
                ProbeOutcome(
                    node_id=node_id,
                    d_prop_ms=rtt,
                    d_proc_ms=reply.what_if_ms,
                    seq_num=reply.seq_num,
                    attached_users=reply.attached_users,
                    current_proc_ms=reply.current_proc_ms,
                    stay_ms=reply.stay_ms or reply.what_if_ms,
                    probed_at_ms=self.system.sim.now,
                )
            )
            if self.proactive_connections:
                self._ensure_link(node_id, rtt)
        self.system.sim.schedule(
            max_rtt if max_rtt > 0 else 1.0,
            lambda: self._on_probes_done(outcomes),
            label=f"{self.user_id}.probed",
        )

    def _on_probes_done(self, outcomes: List[ProbeOutcome]) -> None:
        if self._stopped:
            return
        # For the node we are already attached to, the question is not
        # "what if one more user joins" (we are one of its n users) but
        # "what do I get by staying at my full rate" — the stay
        # projection the probe reply carries. Substituting it before
        # ranking removes a systematic bias against staying put without
        # letting adaptive throttling mask overload.
        if self.attached:
            outcomes = [
                replace(o, d_proc_ms=o.stay_ms)
                if o.node_id == self.current_edge
                else o
                for o in outcomes
            ]
        ranked = self.local_policy(outcomes)
        if not ranked:
            # No candidate satisfies QoS / all candidates dead.
            self._end_round()
            if not self.attached:
                self.system.sim.schedule(500.0, self._begin_selection_round)
            return
        best = ranked[0]
        if self.attached and best.node_id == self.current_edge:
            self._adopt_backups(ranked[1:])
            self._end_round()
            return
        if self.attached:
            # Dwell: a voluntary switch is only considered once the
            # previous join has had time to settle.
            if (
                self.system.sim.now - self._last_join_ms
                < self.config.min_dwell_ms
            ):
                ranked_backups = [o for o in ranked if o.node_id != self.current_edge]
                self._adopt_backups(ranked_backups)
                self._end_round()
                return
            current_outcome = next(
                (o for o in ranked if o.node_id == self.current_edge), None
            )
            threshold = (
                current_outcome.local_overhead_ms
                * (1.0 - self.config.switch_penalty_fraction)
                - self.config.switch_penalty_ms
                if current_outcome is not None
                else float("inf")
            )
            if current_outcome is not None and best.local_overhead_ms >= threshold:
                # Hysteresis: not enough improvement to justify a switch.
                ranked_backups = [o for o in ranked if o.node_id != self.current_edge]
                self._adopt_backups(ranked_backups)
                self._end_round()
                return
        self._send_join(best, ranked)

    def _send_join(self, best: ProbeOutcome, ranked: List[ProbeOutcome]) -> None:
        """``Join()`` the best candidate, echoing its probed seqNum."""
        node = self.system.nodes.get(best.node_id)
        rtt = self.system.topology.rtt_ms(self.user_id, best.node_id)

        def deliver() -> None:
            if self._stopped:
                return
            trace = self.system.trace
            now = self.system.sim.now
            if trace.enabled:
                trace.emit(JoinAttempt(now, self.user_id, best.node_id))
            if node is None or not node.alive:
                trace.emit(JoinReject(now, self.user_id, best.node_id))
                self._on_join_rejected()
                return
            reply = node.join(self.user_id, best.seq_num, self.controller.fps)
            if reply.accepted:
                trace.emit(JoinAccept(now, self.user_id, best.node_id))
                self.stats.joins_accepted += 1
                self._on_join_accepted(best, ranked)
            else:
                trace.emit(JoinReject(now, self.user_id, best.node_id))
                self.stats.joins_rejected += 1
                self._on_join_rejected()

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.join")

    def _on_join_accepted(self, best: ProbeOutcome, ranked: List[ProbeOutcome]) -> None:
        previous = self.current_edge
        if previous is not None and previous != best.node_id:
            self._send_leave(previous, reason="switch")
            self.stats.switches += 1
            self.system.trace.emit(
                Switch(
                    self.system.sim.now,
                    self.user_id,
                    from_node=previous,
                    to_node=best.node_id,
                )
            )
        was_attached = previous is not None
        self.current_edge = best.node_id
        self._last_join_ms = self.system.sim.now
        self._ensure_link(best.node_id, best.d_prop_ms)
        self._adopt_backups([o for o in ranked if o.node_id != best.node_id])
        self._end_round()
        if not was_attached:
            self._flush_backlog()

    def _on_join_rejected(self) -> None:
        """Join rejected (state changed): repeat from the discovery step."""
        self._retries += 1
        if self._retries <= self.config.max_discovery_retries:
            self._send_discovery()
        else:
            self._end_round()
            if not self.attached:
                self.system.sim.schedule(500.0, self._begin_selection_round)

    def _adopt_backups(self, ranked_rest: List[ProbeOutcome]) -> None:
        backup_count = max(0, self.top_n - 1)
        backup_ids = [o.node_id for o in ranked_rest[:backup_count]]
        self.failure_monitor.update_backups(backup_ids)
        if self.proactive_connections:
            for outcome in ranked_rest[:backup_count]:
                self._ensure_link(outcome.node_id, outcome.d_prop_ms)
        self._prune_links()

    def _end_round(self) -> None:
        self._round_in_progress = False

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def _ensure_link(self, node_id: str, rtt_ms: float) -> Link:
        link = self.links.get(node_id)
        if link is None:
            link = Link(self.user_id, node_id, rtt_ms)
            link.mark_up(self.system.sim.now)  # warmed by the probe exchange
            self.links[node_id] = link
        else:
            link.rtt_ms = rtt_ms
        return link

    def _prune_links(self) -> None:
        """Close connections to nodes that are neither current nor backup."""
        keep = set(self.failure_monitor.backups)
        if self.current_edge is not None:
            keep.add(self.current_edge)
        for node_id in list(self.links):
            if node_id not in keep:
                del self.links[node_id]

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def observes_node(self, node_id: str) -> bool:
        """See :meth:`ClientLike.observes_node`: connection, attachment
        or backup-list membership all make a failure observable."""
        return (
            node_id in self.links
            or node_id == self.current_edge
            or node_id in self.failure_monitor.backups
        )

    def on_edge_failure(self, node_id: str) -> None:
        """A connection to ``node_id`` broke (delivered by the system
        ``failure_detection_ms`` after the node died)."""
        if self._stopped:
            return
        self.links.pop(node_id, None)
        if node_id != self.current_edge:
            self.failure_monitor.remove(node_id)
            return
        self.current_edge = None
        self._failover()

    def _failover(self) -> None:
        """Walk the backup list; uncovered failure falls back to discovery."""
        backup_id = self.failure_monitor.next_backup()
        if backup_id is None:
            self.failure_monitor.note_uncovered()
            self.stats.uncovered_failures += 1
            self.system.trace.emit(
                UncoveredFailure(self.system.sim.now, self.user_id)
            )
            self._reactive_reconnect()
            return
        node = self.system.nodes.get(backup_id)
        rtt = (
            self.system.topology.rtt_ms(self.user_id, backup_id)
            if self.system.topology.has_endpoint(backup_id)
            else self.config.common_rtt_ms
        )
        if not self.proactive_connections:
            rtt += CONNECTION_SETUP_RTTS * rtt  # fresh connection first

        def deliver() -> None:
            if self._stopped:
                return
            if node is not None and node.alive and node.unexpected_join(
                self.user_id, self.controller.fps
            ):
                self.failure_monitor.note_covered()
                self.stats.covered_failovers += 1
                self.system.trace.emit(
                    CoveredFailover(self.system.sim.now, self.user_id, backup_id)
                )
                self.current_edge = backup_id
                self._last_join_ms = self.system.sim.now
                self._ensure_link(backup_id, rtt)
                self._flush_backlog()
            else:
                # This backup is dead too: try the next one.
                self._failover()

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.failover")

    def _reactive_reconnect(self) -> None:
        """No live backup: pay full re-discovery + connection establishment."""
        if self._round_in_progress:
            return
        self._begin_selection_round()

    # ------------------------------------------------------------------
    # Offloading loop
    # ------------------------------------------------------------------
    def _schedule_next_frame(self, delay_ms: float) -> None:
        if self._stopped:
            return
        self.system.sim.schedule(
            delay_ms, self._offload_tick, label=f"{self.user_id}.frame"
        )

    def _offload_tick(self) -> None:
        if self._stopped:
            return
        frame = self.frame_source.next_frame(self.system.sim.now)
        if self.attached:
            self._send_frame(frame)
        else:
            self._backlog.append(frame)
        self._schedule_next_frame(self.controller.interval_ms)

    #: Frames older than this are useless to an AR application (the scene
    #: has moved on); they are dropped as lost rather than offloaded.
    FRAME_STALENESS_MS = 2_000.0

    def _flush_backlog(self) -> None:
        """Send frames buffered during downtime (their latency includes it).

        Frames that went stale during the outage are dropped and counted
        as lost — replaying seconds-old camera frames after a reconnect
        would only poison the queue and tell the user about the past.
        """
        now = self.system.sim.now
        while self._backlog and self.attached:
            frame = self._backlog.popleft()
            if now - frame.created_ms > self.FRAME_STALENESS_MS:
                self._record_lost(frame, self.current_edge or "none")
                continue
            self._send_frame(frame)

    def _send_frame(self, frame: Frame) -> None:
        edge_id = self.current_edge
        assert edge_id is not None
        node = self.system.nodes.get(edge_id)
        topology = self.system.topology
        trace = self.system.trace
        self.stats.frames_sent += 1
        if node is None or not topology.has_endpoint(edge_id):
            self._record_lost(frame, edge_id)
            return
        if trace.enabled:
            trace.emit(
                FrameStart(self.system.sim.now, self.user_id, edge_id,
                           frame.frame_id)
            )
        transfer = topology.transfer_ms(self.user_id, edge_id, frame.size_bytes)
        uplink_delay = topology.one_way_ms(self.user_id, edge_id) + transfer
        # Time the frame spent in the client-side backlog before leaving
        # (0 for frames sent the moment they were captured) — part of the
        # queue phase of the latency decomposition.
        backlog_ms = self.system.sim.now - frame.created_ms
        arrival = self.system.sim.now + uplink_delay

        def arrive() -> None:
            completed = node.receive_frame(frame, self.system.sim.now)
            if completed is None:
                self._record_lost(frame, edge_id)
                return
            downlink = topology.one_way_ms(edge_id, self.user_id)

            def respond() -> None:
                if not node.alive and node.failed_at_ms is not None and (
                    node.failed_at_ms < completed.completion_ms
                ):
                    # The node died while the frame was queued/processing.
                    self._record_lost(frame, edge_id)
                    return
                now = self.system.sim.now
                latency = now - frame.created_ms
                self.stats.frames_completed += 1
                self.stats.latencies_ms.append(latency)
                if trace.enabled:
                    # The three spans sum exactly to `latency`:
                    # latency = backlog + uplink + wait + service + downlink.
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "rtt",
                                  uplink_delay + downlink)
                    )
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "queue",
                                  backlog_ms + completed.wait_ms)
                    )
                    trace.emit(
                        PhaseSpan(now, self.user_id, frame.frame_id, "process",
                                  completed.service_ms)
                    )
                trace.emit(
                    FrameDone(now, self.user_id, edge_id, frame.frame_id,
                              frame.created_ms, latency)
                )
                self.controller.observe(latency)

            self.system.sim.schedule_at(
                completed.completion_ms + downlink,
                respond,
                label=f"{self.user_id}.resp",
            )

        self.system.sim.schedule_at(arrival, arrive, label=f"{self.user_id}.uplink")

    def _record_lost(self, frame: Frame, edge_id: str) -> None:
        self.stats.frames_lost += 1
        self.system.trace.emit(
            FrameDone(self.system.sim.now, self.user_id, edge_id,
                      frame.frame_id, frame.created_ms, None)
        )

    # ------------------------------------------------------------------
    def _send_leave(self, node_id: str, reason: str) -> None:
        node = self.system.nodes.get(node_id)
        if node is None:
            return
        delay = (
            self.system.topology.one_way_ms(self.user_id, node_id)
            if self.system.topology.has_endpoint(node_id)
            else 1.0
        )
        self.system.sim.schedule(
            delay, lambda: node.leave(self.user_id), label=f"{self.user_id}.leave"
        )

    def __repr__(self) -> str:
        return (
            f"EdgeClient({self.user_id}, edge={self.current_edge}, "
            f"backups={self.failure_monitor.backups})"
        )
