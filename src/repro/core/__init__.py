"""The paper's primary contribution: client-centric distributed edge selection.

The pieces map one-to-one onto Fig. 2 of the paper:

- :class:`~repro.core.manager.CentralManager` — collects node status and
  answers edge-discovery queries with a TopN *candidate edge list*
  (step 1: global edge selection).
- :class:`~repro.core.edge_server.EdgeServer` — an edge node running the
  application server; exposes the probing APIs of Table I
  (``RTT_probe``, ``Process_probe``, ``Join``, ``Unexpected_join``,
  ``Leave``), maintains the "what-if" cache, the ``seqNum`` join
  synchronization (Algorithm 1) and the performance monitor.
- :class:`~repro.core.client.EdgeClient` — the user side: the
  performance-probing procedure of Algorithm 2, local edge selection
  (LO / GO policies in :mod:`repro.core.policies`), the offloading loop,
  and the failure monitor with proactive backup connections.
- :class:`~repro.core.system.EdgeSystem` — wiring: the simulator, the
  network topology, and the live registry of nodes and clients; also the
  hook point for churn injection.
"""

from repro.core.client import ClientStats, EdgeClient
from repro.core.config import SystemConfig
from repro.core.edge_server import EdgeServer, NodeState
from repro.core.manager import CentralManager
from repro.core.messages import (
    CandidateList,
    DiscoveryQuery,
    JoinReply,
    NodeStatus,
    ProbeReply,
)
from repro.core.probing import ProbeOutcome
from repro.core.system import EdgeSystem

__all__ = [
    "SystemConfig",
    "EdgeSystem",
    "CentralManager",
    "EdgeServer",
    "NodeState",
    "EdgeClient",
    "ClientStats",
    "NodeStatus",
    "DiscoveryQuery",
    "CandidateList",
    "ProbeReply",
    "JoinReply",
    "ProbeOutcome",
]
