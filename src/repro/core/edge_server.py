"""The edge node server — simulation driver over the protocol core.

The node-side *decisions* of Table I — seqNum join synchronization
(Algorithm 1), the unrejectable ``Unexpected_join``, leave handling,
the what-if cache invalidation triggers (join / leave / drift / idle)
and its EWMA update rule — live in
:class:`repro.protocol.admission.AdmissionMachine`. This class is the
sim-side **driver**: it owns the physics the machine cannot — the real
frame queue the synthetic test workload runs through, the measured
sojourns, heartbeating, host-workload replay — and translates between
sim method calls and machine events/effects:

- ``process_probe``/``join``/``unexpected_join``/``leave`` feed the
  machine and frame its reply effects into the wire messages;
- a :class:`~repro.protocol.effects.ScheduleTestWorkload` effect runs
  the synthetic frame through the **real** queue (delayed by
  ``2 x common RTT`` for the join trigger, so the new user's frames are
  already flowing) and feeds the measured sojourn back as
  :class:`~repro.protocol.events.TestWorkloadCompleted`;
- the periodic performance monitor samples the queue and feeds
  :class:`~repro.protocol.events.MonitorSample` (trigger type 3).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.messages import JoinReply, NodeStatus, ProbeReply
from repro.geo import geohash as gh
from repro.nodes.hardware import HardwareProfile
from repro.nodes.host_workload import HostWorkloadSchedule
from repro.nodes.processing import CompletedFrame, FrameProcessor, analytic_sojourn_ms
from repro.obs.events import AttachmentExpired, CacheMiss, TestWorkloadInvoked
from repro.protocol.admission import AdmissionConfig, AdmissionMachine
from repro.protocol.effects import (
    Effect,
    EmitTrace,
    ReplyJoin,
    ReplyProbe,
    ScheduleTestWorkload,
)
from repro.protocol.events import (
    JoinRequested,
    LeaveRequested,
    MonitorSample,
    NodeFailed,
    ProbeRequested,
    TestWorkloadCompleted,
    UnexpectedJoinRequested,
)
from repro.sim.kernel import TimerHandle
from repro.workload.frames import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import EdgeSystem


class NodeState(enum.Enum):
    ALIVE = "alive"
    FAILED = "failed"


class EdgeServer:
    """One edge node: application server + probing endpoint.

    Args:
        system: the owning :class:`~repro.core.system.EdgeSystem`.
        node_id: unique id; must match a registered network endpoint.
        profile: hardware profile (Table II entry or custom).
        dedicated: True for Local-Zone-style dedicated infrastructure
            (no host workload, advertised as dedicated to the manager).
        host_schedule: volunteer host-workload interference timeline.
    """

    def __init__(
        self,
        system: "EdgeSystem",
        node_id: str,
        profile: HardwareProfile,
        *,
        dedicated: bool = False,
        host_schedule: Optional[HostWorkloadSchedule] = None,
    ) -> None:
        self.system = system
        self.node_id = node_id
        self.profile = profile
        self.dedicated = dedicated
        self.host_schedule = host_schedule or HostWorkloadSchedule.none()
        self.config: SystemConfig = system.config

        self.processor = FrameProcessor(profile)
        self.state = NodeState.ALIVE
        self.failed_at_ms: Optional[float] = None
        #: The sans-IO admission core this driver executes.
        self._machine = AdmissionMachine(
            node_id,
            AdmissionConfig(
                join_synchronization=self.config.join_synchronization,
                perf_monitor_threshold=self.config.perf_monitor_threshold,
                standard_fps=system.app.max_fps,
            ),
            initial_ms=profile.base_frame_ms,
            project=self._project_sojourn,
            detail_guard=lambda: self.system.trace.enabled,
        )

        # counters surfaced to experiments
        self.test_workload_invocations = 0
        self.probes_served = 0
        self.joins_accepted = 0
        self.joins_rejected = 0
        self.frames_received = 0
        self.frames_dropped = 0

        self._heartbeat_timer: Optional[TimerHandle] = None
        self._monitor_timer: Optional[TimerHandle] = None
        self._lease_timer: Optional[TimerHandle] = None
        self._test_pending = False
        #: Last time each attached user showed signs of life (join
        #: grant or frame arrival) — drives the attachment lease.
        self._last_seen_ms: Dict[str, float] = {}

    def _project_sojourn(self, offered_fps: float, slowdown: float) -> float:
        """The machine's analytic sojourn projection, closed over this
        node's hardware profile."""
        return analytic_sojourn_ms(
            self.profile, offered_fps, slowdown_factor=slowdown
        )

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver for experiments and the
    # multi-app subclass.
    # ------------------------------------------------------------------
    @property
    def seq_num(self) -> int:
        return self._machine.seq_num

    @seq_num.setter
    def seq_num(self, value: int) -> None:
        self._machine.seq_num = value

    @property
    def attached(self) -> Dict[str, float]:
        return self._machine.attached

    @attached.setter
    def attached(self, value: Dict[str, float]) -> None:
        self._machine.attached = value

    @property
    def what_if_ms(self) -> float:
        return self._machine.what_if_ms

    @what_if_ms.setter
    def what_if_ms(self, value: float) -> None:
        self._machine.what_if_ms = value

    @property
    def stay_ms(self) -> float:
        return self._machine.stay_ms

    @stay_ms.setter
    def stay_ms(self, value: float) -> None:
        self._machine.stay_ms = value

    @property
    def _monitor_baseline_ms(self) -> float:
        return self._machine.monitor_baseline_ms

    @_monitor_baseline_ms.setter
    def _monitor_baseline_ms(self, value: float) -> None:
        self._machine.monitor_baseline_ms = value

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating, performance monitoring and host-workload replay."""
        sim = self.system.sim
        self._heartbeat_timer = sim.every(
            self.config.heartbeat_period_ms,
            self._send_heartbeat,
            start_after=0.0,
            label=f"{self.node_id}.heartbeat",
        )
        self._monitor_timer = sim.every(
            self.config.perf_monitor_period_ms,
            self._performance_monitor_tick,
            label=f"{self.node_id}.perfmon",
        )
        if self.config.attachment_lease_ms is not None:
            self._lease_timer = sim.every(
                self.config.attachment_lease_ms / 2.0,
                self._expire_stale_attachments,
                label=f"{self.node_id}.lease",
            )
        for change_ms in self.host_schedule.change_points():
            if change_ms >= sim.now:
                sim.schedule_at(
                    change_ms, self._apply_host_slowdown, label=f"{self.node_id}.host"
                )
        self._apply_host_slowdown()
        # Prime the what-if cache so the very first probe sees real data.
        self._mark_cache_stale("prime")
        self._invoke_test_workload()

    def fail(self) -> None:
        """The node crashes or leaves without notification.

        All attached users lose their in-flight frames; clients find out
        through their own failure detection, not through us (volunteer
        nodes "can join and leave the system anytime without
        notifications").
        """
        if self.state is NodeState.FAILED:
            return
        self.state = NodeState.FAILED
        self.failed_at_ms = self.system.sim.now
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        if self._monitor_timer is not None:
            self._monitor_timer.cancel()
        if self._lease_timer is not None:
            self._lease_timer.cancel()
        self._machine.handle(NodeFailed(self.system.sim.now))

    @property
    def alive(self) -> bool:
        return self.state is NodeState.ALIVE

    # ------------------------------------------------------------------
    # Effect execution
    # ------------------------------------------------------------------
    def _run_effects(self, effects: List[Effect]) -> Optional[Effect]:
        """Execute side effects in order; return the reply effect (if any)."""
        reply: Optional[Effect] = None
        for effect in effects:
            if isinstance(effect, EmitTrace):
                self.system.trace.emit(effect.event)
            elif isinstance(effect, ScheduleTestWorkload):
                if effect.delayed:
                    self.system.sim.schedule(
                        2.0 * self.config.common_rtt_ms,
                        self._invoke_test_workload,
                        label=f"{self.node_id}.testwl",
                    )
                else:
                    self._invoke_test_workload()
            elif isinstance(effect, (ReplyProbe, ReplyJoin)):
                reply = effect
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")
        return reply

    # ------------------------------------------------------------------
    # Table I APIs (invoked by clients after the network delay)
    # ------------------------------------------------------------------
    def process_probe(self) -> Optional[ProbeReply]:
        """``Process_probe()``: return the cached what-if performance.

        A cache read only — "a large number of probing requests do not
        necessarily lead to more test workload invocations". Returns
        None when the node is dead (the caller's probe just times out).
        """
        if not self.alive:
            return None
        self.probes_served += 1
        now = self.system.sim.now
        reply = self._run_effects(
            self._machine.handle(
                ProbeRequested(
                    now,
                    recent_mean_ms=self.processor.recent_mean_sojourn_ms(now),
                )
            )
        )
        assert isinstance(reply, ReplyProbe)
        return ProbeReply(
            node_id=self.node_id,
            what_if_ms=reply.what_if_ms,
            seq_num=reply.seq_num,
            attached_users=reply.attached_users,
            current_proc_ms=reply.current_proc_ms,
            stay_ms=reply.stay_ms,
        )

    def join(self, user_id: str, user_seq_num: int, fps: float) -> JoinReply:
        """``Join()`` with seqNum synchronization (Algorithm 1).

        Accepted only if the node state has not changed since the
        caller's probe. Acceptance is itself a state change: the seqNum
        increments and a test-workload run is scheduled after
        ``2 x common RTT`` so the measurement sees the new user's frames.
        """
        reply = self._run_effects(
            self._machine.handle(
                JoinRequested(self.system.sim.now, user_id, user_seq_num, fps)
            )
        )
        assert isinstance(reply, ReplyJoin)
        if reply.accepted:
            self.joins_accepted += 1
            self._last_seen_ms[user_id] = self.system.sim.now
        else:
            self.joins_rejected += 1
        return JoinReply(
            node_id=self.node_id, accepted=reply.accepted, seq_num=reply.seq_num
        )

    def unexpected_join(self, user_id: str, fps: float) -> bool:
        """``Unexpected_join()``: failover attach that cannot be rejected.

        Returns False only if this node is itself dead (the client will
        then try its next backup).
        """
        reply = self._run_effects(
            self._machine.handle(
                UnexpectedJoinRequested(self.system.sim.now, user_id, fps)
            )
        )
        assert isinstance(reply, ReplyJoin)
        if reply.accepted:
            self.joins_accepted += 1
            self._last_seen_ms[user_id] = self.system.sim.now
        return reply.accepted

    def leave(self, user_id: str) -> None:
        """``Leave()``: workload decrease — trigger type 2."""
        self._last_seen_ms.pop(user_id, None)
        self._run_effects(
            self._machine.handle(LeaveRequested(self.system.sim.now, user_id))
        )

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def receive_frame(
        self, frame: Frame, arrival_ms: float
    ) -> Optional[CompletedFrame]:
        """Enqueue an offloaded frame; return its completion record.

        The :class:`~repro.nodes.processing.CompletedFrame` carries the
        wait/service split the client turns into latency phase spans.
        Returns None when the node is dead (frame lost) or its queue is
        full (frame dropped).
        """
        if not self.alive:
            return None
        self.frames_received += 1
        self._last_seen_ms[frame.user_id] = arrival_ms
        completed = self.processor.submit(arrival_ms)
        if completed is None:
            self.frames_dropped += 1
            return None
        return completed

    # ------------------------------------------------------------------
    # What-if test workload + performance monitor
    # ------------------------------------------------------------------
    def _mark_cache_stale(self, reason: str) -> None:
        """Emit the cache-staleness trace event for one refresh trigger
        that originates in the driver (``prime``; the protocol triggers
        emit their own through the machine)."""
        if self.system.trace.enabled:
            self.system.trace.emit(
                CacheMiss(self.system.sim.now, self.node_id, reason)
            )

    def _invoke_test_workload(self) -> None:
        """Run the synthetic single-frame test workload through the
        **real** frame queue, then feed the measured sojourn back to the
        admission machine, which folds it into the what-if cache (EWMA
        blend with the analytic demand projection — see DESIGN.md §5).

        The real queue is the paper's accuracy argument for probing over
        static profiling: the sojourn reflects hardware, host
        interference and the live workload. Invocations are coalesced:
        if one is already in flight, the trigger is satisfied by its
        result.
        """
        if not self.alive or self._test_pending:
            return
        now = self.system.sim.now
        completed = self.processor.submit(now, synthetic=True)
        if completed is None:
            return  # queue saturated: cache keeps its (pessimistic) value
        self.test_workload_invocations += 1
        self.system.trace.emit(TestWorkloadInvoked(now, self.node_id))
        self._test_pending = True

        def report() -> None:
            self._test_pending = False
            self._run_effects(
                self._machine.handle(
                    TestWorkloadCompleted(
                        self.system.sim.now,
                        completed.sojourn_ms,
                        slowdown_factor=self.processor.slowdown_factor,
                    )
                )
            )

        self.system.sim.schedule_at(
            completed.completion_ms, report, label=f"{self.node_id}.cache"
        )

    def _performance_monitor_tick(self) -> None:
        """Trigger type 3: noticeable processing-time drift at constant users.

        Catches adaptive request-rate changes and host workloads — both
        change measured sojourns without a join/leave. The driver only
        samples the queue; the drift/idle decisions are the machine's.
        """
        if not self.alive:
            return
        now = self.system.sim.now
        self._run_effects(
            self._machine.handle(
                MonitorSample(
                    now,
                    measured_ms=self.processor.recent_mean_sojourn_ms(now),
                    idle_floor_ms=self.processor.effective_service_ms,
                )
            )
        )

    def _expire_stale_attachments(self) -> None:
        """Evict attached users whose frames stopped arriving.

        The cleanup path for a ``Leave()`` lost in transit (or skipped
        by a client that believed this node dead): without it a
        partition can strand admission state forever, inflating the
        what-if projection with ghost users. Expiry feeds the machine a
        plain :class:`~repro.protocol.events.LeaveRequested`, so the
        usual trigger-type-2 cache refresh happens.
        """
        lease_ms = self.config.attachment_lease_ms
        if lease_ms is None or not self.alive:
            return
        now = self.system.sim.now
        for user_id in list(self._machine.attached):
            idle_ms = now - self._last_seen_ms.get(user_id, now)
            if idle_ms < lease_ms:
                continue
            self._last_seen_ms.pop(user_id, None)
            self.system.trace.emit(
                AttachmentExpired(now, self.node_id, user_id, idle_ms)
            )
            self._run_effects(
                self._machine.handle(LeaveRequested(now, user_id))
            )

    def _apply_host_slowdown(self) -> None:
        """Apply the host-workload slowdown in effect right now."""
        if not self.alive:
            return
        factor = self.host_schedule.slowdown_at(self.system.sim.now)
        if factor != self.processor.slowdown_factor:
            self.processor.set_slowdown(max(1.0, factor))

    # ------------------------------------------------------------------
    # Manager heartbeat
    # ------------------------------------------------------------------
    def status(self) -> NodeStatus:
        """Current status snapshot (what a heartbeat carries)."""
        endpoint = self.system.topology.endpoint(self.node_id)
        now = self.system.sim.now
        return NodeStatus(
            node_id=self.node_id,
            lat=endpoint.point.lat,
            lon=endpoint.point.lon,
            geohash=gh.encode(endpoint.point.lat, endpoint.point.lon, 9),
            cores=self.profile.cores,
            capacity_fps=self.profile.capacity_fps,
            attached_users=len(self.attached),
            utilization=self.processor.offered_utilization(now),
            dedicated=self.dedicated,
            isp=endpoint.isp,
            reported_at_ms=now,
        )

    def _send_heartbeat(self) -> None:
        if not self.alive:
            return
        status = self.status()
        delay = self.system.topology.one_way_ms(self.node_id, self.system.manager_id)
        faults = self.system.faults
        if faults is not None:
            verdict = faults.decide(
                self.node_id, self.system.manager_id, "heartbeat", self.system.sim.now
            )
            if not verdict.deliver:
                return  # lost in transit; the manager ages us out
            delay += verdict.extra_delay_ms
        self.system.sim.schedule(
            delay,
            lambda: self.system.manager.receive_heartbeat(status),
            label=f"{self.node_id}.hb",
        )

    def __repr__(self) -> str:
        return (
            f"EdgeServer({self.node_id}, {self.profile.name}, {self.state.value}, "
            f"users={len(self.attached)}, seq={self.seq_num})"
        )
