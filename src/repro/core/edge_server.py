"""The edge node server (simulated backend).

Implements everything the paper puts on the node side:

- the probing APIs of Table I (``RTT_probe`` is implicit in the network
  round trip; ``Process_probe``/``Join``/``Unexpected_join``/``Leave``
  are methods here);
- the **"what-if" cache**: the synthetic test workload is enqueued into
  the node's real frame queue and its measured sojourn cached; probes
  only read the cache (§IV-C2);
- the three **test-workload triggers** — user join (delayed by
  ``2 x common RTT`` so the new user's frames are already flowing), user
  leave, and the performance monitor noticing drift (adaptive FPS or
  host workload);
- **Join synchronization** via ``seqNum`` (Algorithm 1): a ``Join`` is
  accepted only when the caller echoes the current sequence number,
  which changes on every state change — simultaneous selections by
  multiple users are serialized this way;
- periodic **heartbeats** to the Central Manager.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.config import SystemConfig
from repro.core.messages import JoinReply, NodeStatus, ProbeReply
from repro.geo import geohash as gh
from repro.nodes.hardware import HardwareProfile
from repro.nodes.host_workload import HostWorkloadSchedule
from repro.nodes.processing import CompletedFrame, FrameProcessor, analytic_sojourn_ms
from repro.obs.events import CacheHit, CacheMiss, TestWorkloadInvoked
from repro.sim.kernel import TimerHandle
from repro.workload.frames import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import EdgeSystem


class NodeState(enum.Enum):
    ALIVE = "alive"
    FAILED = "failed"


class EdgeServer:
    """One edge node: application server + probing endpoint.

    Args:
        system: the owning :class:`~repro.core.system.EdgeSystem`.
        node_id: unique id; must match a registered network endpoint.
        profile: hardware profile (Table II entry or custom).
        dedicated: True for Local-Zone-style dedicated infrastructure
            (no host workload, advertised as dedicated to the manager).
        host_schedule: volunteer host-workload interference timeline.
    """

    def __init__(
        self,
        system: "EdgeSystem",
        node_id: str,
        profile: HardwareProfile,
        *,
        dedicated: bool = False,
        host_schedule: Optional[HostWorkloadSchedule] = None,
    ) -> None:
        self.system = system
        self.node_id = node_id
        self.profile = profile
        self.dedicated = dedicated
        self.host_schedule = host_schedule or HostWorkloadSchedule.none()
        self.config: SystemConfig = system.config

        self.processor = FrameProcessor(profile)
        self.state = NodeState.ALIVE
        self.failed_at_ms: Optional[float] = None
        self.seq_num = 0
        #: user_id -> declared offloading fps (informational)
        self.attached: Dict[str, float] = {}
        #: cached "what-if" processing delay served to probes
        self.what_if_ms: float = profile.base_frame_ms
        #: cached stay-projection for already-attached users (see
        #: :class:`~repro.core.messages.ProbeReply.stay_ms`)
        self.stay_ms: float = profile.base_frame_ms
        #: measured processing level at the last test-workload run —
        #: the performance monitor's drift baseline
        self._monitor_baseline_ms: float = profile.base_frame_ms

        # counters surfaced to experiments
        self.test_workload_invocations = 0
        self.probes_served = 0
        self.joins_accepted = 0
        self.joins_rejected = 0
        self.frames_received = 0
        self.frames_dropped = 0

        self._heartbeat_timer: Optional[TimerHandle] = None
        self._monitor_timer: Optional[TimerHandle] = None
        self._test_pending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin heartbeating, performance monitoring and host-workload replay."""
        sim = self.system.sim
        self._heartbeat_timer = sim.every(
            self.config.heartbeat_period_ms,
            self._send_heartbeat,
            start_after=0.0,
            label=f"{self.node_id}.heartbeat",
        )
        self._monitor_timer = sim.every(
            self.config.perf_monitor_period_ms,
            self._performance_monitor_tick,
            label=f"{self.node_id}.perfmon",
        )
        for change_ms in self.host_schedule.change_points():
            if change_ms >= sim.now:
                sim.schedule_at(
                    change_ms, self._apply_host_slowdown, label=f"{self.node_id}.host"
                )
        self._apply_host_slowdown()
        # Prime the what-if cache so the very first probe sees real data.
        self._mark_cache_stale("prime")
        self._invoke_test_workload()

    def fail(self) -> None:
        """The node crashes or leaves without notification.

        All attached users lose their in-flight frames; clients find out
        through their own failure detection, not through us (volunteer
        nodes "can join and leave the system anytime without
        notifications").
        """
        if self.state is NodeState.FAILED:
            return
        self.state = NodeState.FAILED
        self.failed_at_ms = self.system.sim.now
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        if self._monitor_timer is not None:
            self._monitor_timer.cancel()
        self.attached.clear()

    @property
    def alive(self) -> bool:
        return self.state is NodeState.ALIVE

    # ------------------------------------------------------------------
    # Table I APIs (invoked by clients after the network delay)
    # ------------------------------------------------------------------
    def process_probe(self) -> Optional[ProbeReply]:
        """``Process_probe()``: return the cached what-if performance.

        A cache read only — "a large number of probing requests do not
        necessarily lead to more test workload invocations". Returns
        None when the node is dead (the caller's probe just times out).
        """
        if not self.alive:
            return None
        self.probes_served += 1
        if self.system.trace.enabled:
            self.system.trace.emit(
                CacheHit(self.system.sim.now, self.node_id, self.what_if_ms)
            )
        current = self.processor.recent_mean_sojourn_ms(self.system.sim.now)
        return ProbeReply(
            node_id=self.node_id,
            what_if_ms=self.what_if_ms,
            seq_num=self.seq_num,
            attached_users=len(self.attached),
            current_proc_ms=current if current is not None else self.what_if_ms,
            stay_ms=self.stay_ms,
        )

    def join(self, user_id: str, user_seq_num: int, fps: float) -> JoinReply:
        """``Join()`` with seqNum synchronization (Algorithm 1).

        Accepted only if the node state has not changed since the
        caller's probe. Acceptance is itself a state change: the seqNum
        increments and a test-workload run is scheduled after
        ``2 x common RTT`` so the measurement sees the new user's frames.
        """
        if not self.alive or (
            self.config.join_synchronization and user_seq_num != self.seq_num
        ):
            self.joins_rejected += 1
            return JoinReply(node_id=self.node_id, accepted=False, seq_num=self.seq_num)
        self.seq_num += 1
        self.attached[user_id] = fps
        self.joins_accepted += 1
        self._mark_cache_stale("join")
        delay = 2.0 * self.config.common_rtt_ms
        self.system.sim.schedule(
            delay, self._invoke_test_workload, label=f"{self.node_id}.testwl"
        )
        return JoinReply(node_id=self.node_id, accepted=True, seq_num=self.seq_num)

    def unexpected_join(self, user_id: str, fps: float) -> bool:
        """``Unexpected_join()``: failover attach that cannot be rejected.

        Returns False only if this node is itself dead (the client will
        then try its next backup).
        """
        if not self.alive:
            return False
        self.seq_num += 1
        self.attached[user_id] = fps
        self.joins_accepted += 1
        self._mark_cache_stale("join")
        self._invoke_test_workload()
        return True

    def leave(self, user_id: str) -> None:
        """``Leave()``: workload decrease — trigger type 2."""
        if not self.alive:
            return
        if user_id in self.attached:
            del self.attached[user_id]
            self.seq_num += 1
            self._mark_cache_stale("leave")
            self._invoke_test_workload()

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    def receive_frame(
        self, frame: Frame, arrival_ms: float
    ) -> Optional[CompletedFrame]:
        """Enqueue an offloaded frame; return its completion record.

        The :class:`~repro.nodes.processing.CompletedFrame` carries the
        wait/service split the client turns into latency phase spans.
        Returns None when the node is dead (frame lost) or its queue is
        full (frame dropped).
        """
        if not self.alive:
            return None
        self.frames_received += 1
        completed = self.processor.submit(arrival_ms)
        if completed is None:
            self.frames_dropped += 1
            return None
        return completed

    # ------------------------------------------------------------------
    # What-if test workload + performance monitor
    # ------------------------------------------------------------------
    def _mark_cache_stale(self, reason: str) -> None:
        """Emit the cache-staleness trace event for one refresh trigger.

        ``reason``: ``prime`` | ``join`` | ``leave`` | ``drift`` | ``idle``.
        """
        if self.system.trace.enabled:
            self.system.trace.emit(
                CacheMiss(self.system.sim.now, self.node_id, reason)
            )

    def _invoke_test_workload(self) -> None:
        """Run the synthetic single-frame test workload and update the cache.

        The synthetic frame goes through the *real* frame queue, so its
        sojourn reflects hardware, host interference and the live
        workload — the paper's accuracy argument for probing over static
        profiling. Invocations are coalesced: if one is already in
        flight, the trigger is satisfied by its result.

        The cached what-if is the **max** of the measured synthetic
        sojourn and an analytic steady-state estimate fed with the
        node's *live* arrival rate plus one standard new user. A single
        instantaneous frame aliases badly when adaptive-rate clients
        keep the queue oscillating around saturation (a lull reads
        near-idle on a node that is in fact full); the analytic floor —
        still built purely from runtime measurements, never static
        profiles — restores the "what-if one more user joins" semantics
        the paper intends. See DESIGN.md §5.
        """
        if not self.alive or self._test_pending:
            return
        now = self.system.sim.now
        completed = self.processor.submit(now, synthetic=True)
        if completed is None:
            return  # queue saturated: cache keeps its (pessimistic) value
        self.test_workload_invocations += 1
        self.system.trace.emit(TestWorkloadInvoked(now, self.node_id))
        self._test_pending = True

        def update_cache() -> None:
            self._test_pending = False
            if not self.alive:
                return
            measured = completed.sojourn_ms
            # Project the "new-user-join" scenario from *demand*: every
            # attached user plus the newcomer at the application's
            # standard rate. The instantaneous arrival rate is useless
            # here — adaptive clients throttle exactly when the node is
            # overloaded, so a rate-based estimate reads low at the
            # worst moment (and a lull makes the measured sojourn read
            # near-idle on a saturated node).
            n_attached = len(self.attached)
            max_fps = self.system.app.max_fps
            slowdown = self.processor.slowdown_factor
            projected = analytic_sojourn_ms(
                self.profile, (n_attached + 1) * max_fps, slowdown_factor=slowdown
            )
            # EWMA-blend successive cache values: a single synthetic
            # frame that landed behind a transient burst would otherwise
            # make the node look terrible for a whole refresh cycle,
            # stampeding its users away and oscillating the population.
            alpha = 0.6
            self.what_if_ms = (
                alpha * max(measured, projected) + (1.0 - alpha) * self.what_if_ms
            )
            stay_projected = analytic_sojourn_ms(
                self.profile, max(n_attached, 1) * max_fps, slowdown_factor=slowdown
            )
            self.stay_ms = (
                alpha * max(measured, stay_projected) + (1.0 - alpha) * self.stay_ms
            )
            self._monitor_baseline_ms = measured

        self.system.sim.schedule_at(
            completed.completion_ms, update_cache, label=f"{self.node_id}.cache"
        )

    def _performance_monitor_tick(self) -> None:
        """Trigger type 3: noticeable processing-time drift at constant users.

        Catches adaptive request-rate changes and host workloads — both
        change measured sojourns without a join/leave.
        """
        if not self.alive:
            return
        measured = self.processor.recent_mean_sojourn_ms(self.system.sim.now)
        if measured is None:
            # No recent user traffic. If the cached what-if still says
            # "loaded" (left over from departed users), refresh it so an
            # idle node can win users back.
            idle_floor = self.processor.effective_service_ms
            if self.what_if_ms > 1.5 * idle_floor and not self.attached:
                self.seq_num += 1
                self._mark_cache_stale("idle")
                self._invoke_test_workload()
            return
        baseline = self._monitor_baseline_ms
        if baseline <= 0:
            return
        drift = abs(measured - baseline) / baseline
        if drift > self.config.perf_monitor_threshold:
            self.seq_num += 1
            self._mark_cache_stale("drift")
            self._invoke_test_workload()

    def _apply_host_slowdown(self) -> None:
        """Apply the host-workload slowdown in effect right now."""
        if not self.alive:
            return
        factor = self.host_schedule.slowdown_at(self.system.sim.now)
        if factor != self.processor.slowdown_factor:
            self.processor.set_slowdown(max(1.0, factor))

    # ------------------------------------------------------------------
    # Manager heartbeat
    # ------------------------------------------------------------------
    def status(self) -> NodeStatus:
        """Current status snapshot (what a heartbeat carries)."""
        endpoint = self.system.topology.endpoint(self.node_id)
        now = self.system.sim.now
        return NodeStatus(
            node_id=self.node_id,
            lat=endpoint.point.lat,
            lon=endpoint.point.lon,
            geohash=gh.encode(endpoint.point.lat, endpoint.point.lon, 9),
            cores=self.profile.cores,
            capacity_fps=self.profile.capacity_fps,
            attached_users=len(self.attached),
            utilization=self.processor.offered_utilization(now),
            dedicated=self.dedicated,
            isp=endpoint.isp,
            reported_at_ms=now,
        )

    def _send_heartbeat(self) -> None:
        if not self.alive:
            return
        status = self.status()
        delay = self.system.topology.one_way_ms(self.node_id, self.system.manager_id)
        self.system.sim.schedule(
            delay,
            lambda: self.system.manager.receive_heartbeat(status),
            label=f"{self.node_id}.hb",
        )

    def __repr__(self) -> str:
        return (
            f"EdgeServer({self.node_id}, {self.profile.name}, {self.state.value}, "
            f"users={len(self.attached)}, seq={self.seq_num})"
        )
