"""The Central Manager: node registry + global edge selection (step 1).

"Central Manager collects real-time node status/resource utilization
information from edge nodes to serve edge discovery queries" (§IV-A).
It is deliberately *not* in the request path — it only answers discovery
queries with a coarse TopN candidate list; clients do the accurate work.

The manager also hosts the state the **resource-aware weighted round
robin baseline** needs (smooth WRR over availability scores), since that
baseline is a manager/load-balancer-side policy by construction.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.geo.spatial_index import GeohashSpatialIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policies.reputation import ReputationTracker
    from repro.core.system import EdgeSystem


class CentralManager:
    """Registry of alive edge nodes + the global selection policy.

    Args:
        system: owning system (for the clock).
        policy: the composed global selection policy; replaceable to
            restrict pools (e.g. dedicated-only scenarios).
    """

    def __init__(
        self,
        system: "EdgeSystem",
        policy: Optional[GlobalSelectionPolicy] = None,
        reputation: Optional["ReputationTracker"] = None,
    ) -> None:
        self.system = system
        self.policy = policy or GlobalSelectionPolicy()
        #: Optional reputation extension: when set, heartbeat appearances
        #: and silent departures feed it (install its sort key on the
        #: policy to act on the scores; see policies/reputation.py).
        self.reputation = reputation
        self._registry: Dict[str, NodeStatus] = {}
        #: Geohash-bucketed spatial index over the registry, maintained
        #: incrementally on heartbeat/expiry so discovery never scans the
        #: full registry (the metro-scale fast path).
        self.spatial_index: GeohashSpatialIndex[NodeStatus] = GeohashSpatialIndex()
        #: Min-heap of (reported_at_ms, node_id): the oldest heartbeat is
        #: always on top, so expiring stale nodes pops only actually-stale
        #: entries (amortized O(1) per query) instead of scanning all N.
        #: Entries superseded by fresher heartbeats are lazily discarded.
        self._expiry_heap: List[Tuple[float, str]] = []
        self.queries_served = 0
        self.heartbeats_received = 0
        # Smooth-WRR state for the resource-aware baseline.
        self._wrr_current: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Registry maintenance
    # ------------------------------------------------------------------
    def receive_heartbeat(self, status: NodeStatus) -> None:
        """Ingest a node status report."""
        self.heartbeats_received += 1
        self._registry[status.node_id] = status
        self.spatial_index.insert(status)
        heapq.heappush(self._expiry_heap, (status.reported_at_ms, status.node_id))
        if self.reputation is not None:
            self.reputation.record_online(status.node_id, self.system.sim.now)

    def forget_node(self, node_id: str) -> None:
        """Explicitly remove a node (e.g. administrative deregistration)."""
        self._registry.pop(node_id, None)
        self.spatial_index.remove(node_id)
        self._wrr_current.pop(node_id, None)

    def prune_stale(self) -> None:
        """Expire registry entries older than the heartbeat timeout.

        A dead node silently ages out after ``heartbeat_timeout_ms``,
        which is exactly the window in which discovery can still hand out
        a dead candidate (the client tolerates this: probes to it fail
        and it is skipped). The expiry heap keeps this amortized O(1):
        only entries that are actually stale — or superseded by a fresher
        heartbeat for the same node — are ever popped.
        """
        now = self.system.sim.now
        timeout = self.system.config.heartbeat_timeout_ms
        heap = self._expiry_heap
        registry = self._registry
        while heap and now - heap[0][0] > timeout:
            reported_at, node_id = heapq.heappop(heap)
            status = registry.get(node_id)
            if status is None or status.reported_at_ms != reported_at:
                continue  # superseded by a fresher heartbeat (or forgotten)
            registry.pop(node_id, None)
            self.spatial_index.remove(node_id)
            self._wrr_current.pop(node_id, None)
            if self.reputation is not None:
                self.reputation.record_departure(node_id, now)

    def alive_statuses(self) -> List[NodeStatus]:
        """Statuses not older than the heartbeat timeout (pruned on read)."""
        self.prune_stale()
        return list(self._registry.values())

    def known_node_ids(self) -> List[str]:
        return list(self._registry)

    # ------------------------------------------------------------------
    # Edge discovery (global edge selection)
    # ------------------------------------------------------------------
    def discover(self, query: DiscoveryQuery) -> CandidateList:
        """Answer an edge discovery query with the TopN candidate list.

        The fast path: stale entries are expired from the heap (amortized
        O(1)), then selection runs against the spatial index — per-cell
        candidate lookups instead of a full-registry scan, so query cost
        scales with local density rather than metro population.
        """
        self.queries_served += 1
        self.prune_stale()
        node_ids, widened = self.policy.select(query, index=self.spatial_index)
        return CandidateList(
            user_id=query.user_id,
            node_ids=tuple(node_ids),
            generated_at_ms=self.system.sim.now,
            widened=widened,
        )

    # ------------------------------------------------------------------
    # Resource-aware weighted round robin (baseline support)
    # ------------------------------------------------------------------
    def wrr_assign(self, query: DiscoveryQuery) -> Optional[str]:
        """Assign a user to a node by smooth weighted round robin.

        Weights are the availability scores from the latest heartbeats —
        "the weight applied for each edge node is determined by the
        resource availability and utilization" (§V-B). Smooth WRR
        (nginx-style) spreads assignments proportionally without bursts:
        each round every node gains its weight, the richest is picked and
        pays back the total weight.
        """
        statuses = [
            s for s in self.alive_statuses() if s.node_id not in query.exclude
        ]
        if self.policy.node_predicate is not None:
            statuses = [s for s in statuses if self.policy.node_predicate(s)]
        if not statuses:
            return None
        total = 0.0
        weights: Dict[str, float] = {}
        for status in statuses:
            weight = max(status.availability_score, 0.01)
            weights[status.node_id] = weight
            total += weight
        best_id: Optional[str] = None
        best_value = float("-inf")
        for node_id, weight in weights.items():
            current = self._wrr_current.get(node_id, 0.0) + weight
            self._wrr_current[node_id] = current
            if current > best_value:
                best_value = current
                best_id = node_id
        assert best_id is not None
        self._wrr_current[best_id] -= total
        return best_id

    def __repr__(self) -> str:
        return f"CentralManager(nodes={len(self._registry)}, queries={self.queries_served})"
