"""The Central Manager — simulation driver over the protocol core.

"Central Manager collects real-time node status/resource utilization
information from edge nodes to serve edge discovery queries" (§IV-A).
It is deliberately *not* in the request path — it only answers discovery
queries with a coarse TopN candidate list; clients do the accurate work.

The registry, expiry heap, spatial index, TopN ranking and the smooth
WRR state all live in
:class:`repro.protocol.global_select.GlobalSelectionMachine`; this class
adapts it to the simulated backend: sim method calls in, wire messages
out, plus the driver-owned extras — query/heartbeat counters and the
optional reputation tracker fed from ``NodeOnline``/``NodeExpired``
effects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.geo.spatial_index import GeohashSpatialIndex
from repro.protocol.effects import (
    Effect,
    NodeExpired,
    NodeOnline,
    ReplyAssignment,
    ReplyCandidates,
)
from repro.protocol.events import (
    DiscoveryRequested,
    HeartbeatReceived,
    NodeForgotten,
    PruneTick,
    WrrAssignRequested,
)
from repro.protocol.global_select import GlobalSelectionMachine

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.policies.reputation import ReputationTracker
    from repro.core.system import EdgeSystem


class CentralManager:
    """Registry of alive edge nodes + the global selection policy.

    Args:
        system: owning system (for the clock).
        policy: the composed global selection policy; replaceable to
            restrict pools (e.g. dedicated-only scenarios).
    """

    def __init__(
        self,
        system: "EdgeSystem",
        policy: Optional[GlobalSelectionPolicy] = None,
        reputation: Optional["ReputationTracker"] = None,
    ) -> None:
        self.system = system
        #: The sans-IO Central Manager core this driver executes. The
        #: sim's expiry stamps are heartbeat ``reported_at_ms`` values
        #: compared against ``sim.now``.
        self._machine = GlobalSelectionMachine(
            policy or GlobalSelectionPolicy(),
            heartbeat_timeout=system.config.heartbeat_timeout_ms,
        )
        #: Optional reputation extension: when set, heartbeat appearances
        #: and silent departures feed it (install its sort key on the
        #: policy to act on the scores; see policies/reputation.py).
        self.reputation = reputation
        self.queries_served = 0
        self.heartbeats_received = 0

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver for experiments.
    # ------------------------------------------------------------------
    @property
    def policy(self) -> GlobalSelectionPolicy:
        return self._machine.policy

    @policy.setter
    def policy(self, policy: GlobalSelectionPolicy) -> None:
        self._machine.policy = policy

    @property
    def spatial_index(self) -> GeohashSpatialIndex[NodeStatus]:
        return self._machine.spatial_index

    @property
    def _registry(self) -> Dict[str, NodeStatus]:
        return self._machine.registry

    # ------------------------------------------------------------------
    def _run_effects(self, effects: List[Effect]) -> Optional[Effect]:
        """Execute registry effects in order; return the reply (if any)."""
        reply: Optional[Effect] = None
        for effect in effects:
            if isinstance(effect, NodeOnline):
                if self.reputation is not None:
                    self.reputation.record_online(
                        effect.node_id, self.system.sim.now
                    )
            elif isinstance(effect, NodeExpired):
                if self.reputation is not None:
                    self.reputation.record_departure(
                        effect.node_id, self.system.sim.now
                    )
            elif isinstance(effect, (ReplyCandidates, ReplyAssignment)):
                reply = effect
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")
        return reply

    # ------------------------------------------------------------------
    # Registry maintenance
    # ------------------------------------------------------------------
    def receive_heartbeat(self, status: NodeStatus) -> None:
        """Ingest a node status report."""
        self.heartbeats_received += 1
        self._run_effects(
            self._machine.handle(
                HeartbeatReceived(stamp=status.reported_at_ms, status=status)
            )
        )

    def forget_node(self, node_id: str) -> None:
        """Explicitly remove a node (e.g. administrative deregistration)."""
        self._run_effects(self._machine.handle(NodeForgotten(node_id)))

    def prune_stale(self) -> None:
        """Expire registry entries older than the heartbeat timeout.

        A dead node silently ages out after ``heartbeat_timeout_ms``,
        which is exactly the window in which discovery can still hand out
        a dead candidate (the client tolerates this: probes to it fail
        and it is skipped). The machine's expiry heap keeps this
        amortized O(1).
        """
        self._run_effects(self._machine.handle(PruneTick(self.system.sim.now)))

    def alive_statuses(self) -> List[NodeStatus]:
        """Statuses not older than the heartbeat timeout (pruned on read)."""
        self.prune_stale()
        return list(self._machine.registry.values())

    def known_node_ids(self) -> List[str]:
        return list(self._machine.registry)

    # ------------------------------------------------------------------
    # Edge discovery (global edge selection)
    # ------------------------------------------------------------------
    def discover(self, query: DiscoveryQuery) -> CandidateList:
        """Answer an edge discovery query with the TopN candidate list.

        The fast path: stale entries are expired from the heap (amortized
        O(1)), then selection runs against the spatial index — per-cell
        candidate lookups instead of a full-registry scan, so query cost
        scales with local density rather than metro population.
        """
        self.queries_served += 1
        now = self.system.sim.now
        reply = self._run_effects(
            self._machine.handle(
                DiscoveryRequested(now=now, stamp=now, query=query)
            )
        )
        assert isinstance(reply, ReplyCandidates)
        return CandidateList(
            user_id=query.user_id,
            node_ids=reply.node_ids,
            generated_at_ms=reply.generated_at_ms,
            widened=reply.widened,
        )

    # ------------------------------------------------------------------
    # Resource-aware weighted round robin (baseline support)
    # ------------------------------------------------------------------
    def wrr_assign(self, query: DiscoveryQuery) -> Optional[str]:
        """Assign a user to a node by smooth weighted round robin.

        Weights are the availability scores from the latest heartbeats —
        "the weight applied for each edge node is determined by the
        resource availability and utilization" (§V-B). Smooth WRR
        (nginx-style) spreads assignments proportionally without bursts:
        each round every node gains its weight, the richest is picked and
        pays back the total weight.
        """
        reply = self._run_effects(
            self._machine.handle(
                WrrAssignRequested(
                    stamp=self.system.sim.now, exclude=tuple(query.exclude)
                )
            )
        )
        assert isinstance(reply, ReplyAssignment)
        return reply.node_id

    def __repr__(self) -> str:
        return (
            f"CentralManager(nodes={len(self._machine.registry)}, "
            f"queries={self.queries_served})"
        )
