"""System configuration.

The two knobs the paper studies explicitly (§IV-E) are:

- ``top_n`` — the size of the candidate edge list. ``top_n - 1`` is the
  backup-list size; larger values add probing/synchronization overhead
  but improve accuracy, fairness and fault tolerance (Fig. 9/10).
- ``probing_period_ms`` (``T_probing``) — the interval between
  consecutive edge-discovery/performance-probing rounds; smaller values
  refresh the backup list faster and raise robustness at higher cost.

Everything else is plumbing with defaults chosen to match the paper's
described behaviour.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class SystemConfig:
    """All tunables of the edge-selection system.

    Attributes:
        top_n: candidate edge list size (``TopN``).
        probing_period_ms: ``T_probing``, the probing/discovery period.
        probing_jitter_ms: uniform de-synchronization applied per round
            so clients do not probe in lock-step.
        discovery_radius_km: geo-proximity filter radius used by the
            Central Manager; nodes beyond it are excluded unless the
            wide-range (GeoHash prefix-shortened) fallback kicks in.
        wide_radius_km: the "last resort" widened search radius.
        heartbeat_period_ms: node -> manager status report interval.
        heartbeat_timeout_ms: manager declares a node dead after this
            much silence.
        failure_detection_ms: time for a client to notice its attached
            edge died (broken connection / keepalive).
        switch_penalty_ms: hysteresis — a candidate must beat the current
            node's predicted latency by this margin before the client
            switches (prevents flapping between near-equal nodes).
        switch_penalty_fraction: relative hysteresis — the candidate must
            additionally beat the current node by this fraction of the
            current predicted latency. Absolute + relative margins
            together prevent herd reshuffling when many nodes sit near
            the same predicted latency.
        min_dwell_ms: cooldown after a voluntary join before the client
            will consider another voluntary switch. Greedy re-selection
            every probing round makes the population oscillate (a node
            emptied by leavers instantly looks cheap and refills);
            dwelling a couple of rounds lets what-if caches catch up.
            Failovers ignore the dwell — a dead node is always left
            immediately.
        rtt_probe_samples: pings averaged per ``RTT_probe`` (real probes
            send several ICMP/UDP pings; averaging tames jitter).
        policy_spec: name of the client selection policy in the
            :mod:`repro.policy` registry (``"go"``, ``"lo"``,
            ``"ewma"``, ``"reliability"``, ``"churn"``, ...). None means
            the paper's default, GO. QoS filtering composes on top via
            ``qos_latency_ms``.
        use_global_overhead: **deprecated** — the old boolean form of
            ``policy_spec`` (True → ``"go"``, False → ``"lo"``).
            Setting it warns and still works for one release; setting
            both it and ``policy_spec`` is an error.
        join_synchronization: enforce the ``seqNum`` check in ``Join()``
            (Algorithm 1). False is an ablation: joins always accept, so
            simultaneous selections collide on stale what-if values.
        qos_latency_ms: optional QoS cutoff; candidates whose predicted
            LO exceeds it are filtered out before GO ranking.
        common_rtt_ms: the "common user RTT propagation" used to delay
            join-triggered test-workload invocations (2x this value).
        perf_monitor_period_ms: how often a node's performance monitor
            compares measured processing time against the cached value.
        perf_monitor_threshold: relative drift that re-triggers the test
            workload (trigger type 3).
        max_discovery_retries: how many times a client repeats the
            discovery+probing procedure after consecutive Join rejections
            before backing off for one probing period.
        attachment_lease_ms: optional server-side lease on admission
            state. A node expires any attached user whose frames stop
            arriving for this long — the cleanup path for a ``Leave()``
            lost to a partition (the client has moved on; the stale
            entry would otherwise inflate the node's what-if projection
            forever). None (the default) disables expiry.
        seed: root seed for all random streams.
        cohort_batching: metro kernel only — advance whole cohorts of
            same-phase clients per tick with array arithmetic instead of
            one kernel event per frame. Both modes emit the same
            trace-event multiset (tested); False exists for parity tests
            and as the reference implementation.
        cohort_tick_ms: width of the metro kernel's cohort tick window.
            All control-plane activity (selection rounds, failures,
            detections, shard epochs) is quantized to tick boundaries —
            this is what makes batched and per-client stepping
            equivalent.
        metro_shards: number of independent geohash-sharded metro
            kernels. 1 (the default) is bit-identical to the unsharded
            kernel.
        shard_workers: worker processes stepping shard kernels
            (forked, sweep-executor style). 1 steps them serially in
            process; results are identical either way.
        boundary_epoch_ms: period of the cross-shard boundary channel
            (ghost-load refresh + user handoffs). Must be a whole
            multiple of ``cohort_tick_ms``.
        control_plane_shards: number of Central Manager registry shards
            (geohash-range partitioned; ``repro.controlplane``). With
            the default 1 (and 1 replica) the system runs the plain
            single manager, bit-identical to the seed.
        control_plane_replicas: manager replicas per shard (primary +
            standbys). Standbys track the primary via heartbeat deltas
            and are promoted on primary loss.
    """

    top_n: int = 3
    probing_period_ms: float = 2_000.0
    probing_jitter_ms: float = 200.0
    discovery_radius_km: float = 80.0
    wide_radius_km: float = 400.0
    heartbeat_period_ms: float = 1_000.0
    heartbeat_timeout_ms: float = 3_000.0
    failure_detection_ms: float = 200.0
    switch_penalty_ms: float = 5.0
    switch_penalty_fraction: float = 0.15
    min_dwell_ms: float = 5_000.0
    rtt_probe_samples: int = 3
    use_global_overhead: Optional[bool] = None
    join_synchronization: bool = True
    qos_latency_ms: Optional[float] = None
    common_rtt_ms: float = 20.0
    perf_monitor_period_ms: float = 1_000.0
    perf_monitor_threshold: float = 0.4
    max_discovery_retries: int = 3
    attachment_lease_ms: Optional[float] = None
    seed: int = 42
    policy_spec: Optional[str] = None
    # Metro-kernel knobs (PR 7). Keyword-only: they are new surface and
    # must never be reachable by positional construction.
    cohort_batching: bool = field(default=True, kw_only=True)
    cohort_tick_ms: float = field(default=250.0, kw_only=True)
    metro_shards: int = field(default=1, kw_only=True)
    shard_workers: int = field(default=1, kw_only=True)
    boundary_epoch_ms: float = field(default=1_000.0, kw_only=True)
    # Control-plane knobs (sharded/replicated Central Manager).
    control_plane_shards: int = field(default=1, kw_only=True)
    control_plane_replicas: int = field(default=1, kw_only=True)

    def __post_init__(self) -> None:
        if self.use_global_overhead is not None:
            if self.policy_spec is not None:
                raise ValueError(
                    "give policy_spec or the deprecated use_global_overhead, "
                    "not both"
                )
            warnings.warn(
                "SystemConfig.use_global_overhead is deprecated; use "
                "policy_spec='go' / policy_spec='lo' instead",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.top_n < 1:
            raise ValueError(f"top_n must be >= 1: {self.top_n}")
        if self.probing_period_ms <= 0:
            raise ValueError(
                f"probing_period_ms must be positive: {self.probing_period_ms}"
            )
        if self.probing_jitter_ms < 0:
            raise ValueError(
                f"probing_jitter_ms must be >= 0: {self.probing_jitter_ms}"
            )
        if self.discovery_radius_km <= 0 or self.wide_radius_km <= 0:
            raise ValueError("discovery radii must be positive")
        if self.wide_radius_km < self.discovery_radius_km:
            raise ValueError("wide_radius_km must be >= discovery_radius_km")
        if self.heartbeat_timeout_ms <= self.heartbeat_period_ms:
            raise ValueError("heartbeat_timeout_ms must exceed heartbeat_period_ms")
        if self.failure_detection_ms < 0:
            raise ValueError("failure_detection_ms must be >= 0")
        if self.switch_penalty_ms < 0:
            raise ValueError("switch_penalty_ms must be >= 0")
        if self.rtt_probe_samples < 1:
            raise ValueError("rtt_probe_samples must be >= 1")
        if not 0.0 <= self.switch_penalty_fraction < 1.0:
            raise ValueError("switch_penalty_fraction must be in [0, 1)")
        if self.min_dwell_ms < 0:
            raise ValueError("min_dwell_ms must be >= 0")
        if self.qos_latency_ms is not None and self.qos_latency_ms <= 0:
            raise ValueError("qos_latency_ms must be positive when set")
        if not 0.0 < self.perf_monitor_threshold:
            raise ValueError("perf_monitor_threshold must be positive")
        if self.max_discovery_retries < 0:
            raise ValueError("max_discovery_retries must be >= 0")
        if self.attachment_lease_ms is not None and self.attachment_lease_ms <= 0:
            raise ValueError("attachment_lease_ms must be positive when set")
        if self.cohort_tick_ms <= 0:
            raise ValueError(f"cohort_tick_ms must be positive: {self.cohort_tick_ms}")
        if self.metro_shards < 1:
            raise ValueError(f"metro_shards must be >= 1: {self.metro_shards}")
        if self.shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1: {self.shard_workers}")
        if self.boundary_epoch_ms <= 0:
            raise ValueError(
                f"boundary_epoch_ms must be positive: {self.boundary_epoch_ms}"
            )
        if self.control_plane_shards < 1:
            raise ValueError(
                f"control_plane_shards must be >= 1: {self.control_plane_shards}"
            )
        if self.control_plane_replicas < 1:
            raise ValueError(
                f"control_plane_replicas must be >= 1: {self.control_plane_replicas}"
            )
        ticks_per_epoch = self.boundary_epoch_ms / self.cohort_tick_ms
        if abs(ticks_per_epoch - round(ticks_per_epoch)) > 1e-9 or ticks_per_epoch < 1:
            raise ValueError(
                "boundary_epoch_ms must be a whole multiple of cohort_tick_ms "
                f"(got {self.boundary_epoch_ms} / {self.cohort_tick_ms})"
            )

    @property
    def backup_count(self) -> int:
        """Size of the backup edge list (``TopN - 1``)."""
        return self.top_n - 1

    @property
    def selection_policy_spec(self) -> str:
        """The effective policy name: ``policy_spec``, else the
        deprecated boolean mapped to ``"go"``/``"lo"``, else the
        paper's default GO."""
        if self.policy_spec is not None:
            return self.policy_spec
        if self.use_global_overhead is not None:
            return "go" if self.use_global_overhead else "lo"
        return "go"

    def with_top_n(self, top_n: int) -> "SystemConfig":
        """**Deprecated** — use ``with_(top_n=...)``.

        Kept for one release as a warning shim; the single-field helper
        predates the general :meth:`with_` copier.
        """
        warnings.warn(
            "SystemConfig.with_top_n() is deprecated; use "
            "config.with_(top_n=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return replace(self, top_n=top_n)

    def with_(self, **changes: object) -> "SystemConfig":
        """Copy with arbitrary field changes (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]
