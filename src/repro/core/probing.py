"""Client-side probe results and the LO/GO overhead computations.

After probing a candidate, the client holds (§IV-D):

- ``LO_j = D_prop_probing + D_proc_probing`` — the Local-view Overhead:
  the latency *this* user would see on candidate ``j``.
- ``GO_j = n × (D_proc_probing − D_proc_current) + LO_j`` — the Global
  Overhead: LO plus the aggregate degradation inflicted on the
  candidate's ``n`` existing users if this user joins.

:class:`ProbeOutcome` packages one candidate's probe; the policy layer
(:mod:`repro.core.policies.local_policies`) sorts lists of them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbeOutcome:
    """Everything Algorithm 2 learns about one candidate edge node.

    Attributes:
        node_id: the probed candidate.
        d_prop_ms: measured RTT propagation delay (``RTT_probe``).
        d_proc_ms: cached "what-if" processing delay (``Process_probe``).
        seq_num: the node's state sequence number at probe time — echoed
            in the subsequent ``Join()`` for synchronization.
        attached_users: the candidate's current user count ``n``.
        current_proc_ms: processing delay existing users currently see.
        probed_at_ms: client timestamp of the probe.
    """

    node_id: str
    d_prop_ms: float
    d_proc_ms: float
    seq_num: int
    attached_users: int
    current_proc_ms: float
    #: stay-projection from the probe reply (see ProbeReply.stay_ms);
    #: a client substitutes this for ``d_proc_ms`` when ranking the node
    #: it is already attached to.
    stay_ms: float = 0.0
    probed_at_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.d_prop_ms < 0 or self.d_proc_ms < 0:
            raise ValueError("probe delays must be >= 0")
        if self.attached_users < 0:
            raise ValueError(f"attached_users must be >= 0: {self.attached_users}")

    @property
    def local_overhead_ms(self) -> float:
        """``LO_j`` — predicted end-to-end latency for the probing user."""
        return self.d_prop_ms + self.d_proc_ms

    @property
    def degradation_ms(self) -> float:
        """Per-existing-user slowdown if this user joins (never negative).

        The what-if value reflects one *additional* user, so it should
        not undercut what current users already experience; clamping
        guards against measurement noise inverting the difference.
        """
        return max(0.0, self.d_proc_ms - self.current_proc_ms)

    @property
    def global_overhead_ms(self) -> float:
        """``GO_j`` — LO plus total degradation inflicted on existing users."""
        return self.attached_users * self.degradation_ms + self.local_overhead_ms
