"""System wiring: simulator + topology + manager + nodes + clients.

:class:`EdgeSystem` is the composition root for a simulated deployment.
Experiments and examples construct one, add edge nodes and clients, run
the simulator, and read the shared :class:`~repro.metrics.MetricsCollector`.

It also implements the two environment-level operations the paper's
dynamics need:

- ``fail_node()`` — a volunteer crashes/leaves without notification:
  the node object dies instantly; every client holding a connection to
  it learns ``failure_detection_ms`` later (broken TCP connection /
  missed keepalive); the manager learns implicitly when heartbeats stop.
- ``spawn_node()`` — a volunteer joins: endpoint registration, server
  start, first heartbeat; clients discover it at their next probing
  round, which is exactly why Fig. 8's latency drops "within seconds"
  of upward population steps.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.client import ClientLike
from repro.core.config import SystemConfig
from repro.core.edge_server import EdgeServer
from repro.core.manager import CentralManager
from repro.core.policies.global_policies import GeoProximityFilter, GlobalSelectionPolicy
from repro.geo.point import GeoPoint
from repro.metrics.collector import MetricsCollector
from repro.net.latency import NetworkTier
from repro.obs.events import FaultInjected, NodeFail, NodeRestart, PopulationChanged
from repro.obs.tracer import Tracer
from repro.net.topology import EndpointSpec, NetworkEndpoint, NetworkTopology
from repro.nodes.hardware import HardwareProfile
from repro.nodes.host_workload import HostWorkloadSchedule
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.workload.ar import ARApplication, DEFAULT_AR_APP

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from typing import Union

    from repro.controlplane.sim_driver import ShardedCentralManager
    from repro.faults.injector import FaultInjector

    ManagerLike = Union[CentralManager, ShardedCentralManager]

#: Reserved endpoint id of the Central Manager.
MANAGER_ID = "central-manager"


class EdgeSystem:
    """A complete simulated edge-dense environment.

    Args:
        config: system tunables.
        topology: pre-built network topology; one is created if omitted
            (the manager endpoint is added automatically either way).
        app: the application profile served by all edge nodes.
        manager_point: where the Central Manager lives (a cloud-tier
            endpoint by default — discovery costs a realistic RTT).
        global_policy: manager-side selection policy override.
        selection_policy: client-side policy spec — a
            :mod:`repro.policy` registry name, a policy prototype, or a
            legacy ranking callable. Overrides
            ``config.policy_spec``; each client gets its own seeded
            instance via :meth:`make_selection_policy`.
        selection_policy_params: constructor keywords when
            ``selection_policy`` (or the config spec) is a name.
        trace: a :class:`~repro.obs.tracer.Tracer` to publish trace
            events on; a capture-disabled one is created if omitted.
            Either way the system's :class:`MetricsCollector` is
            subscribed to it — metrics are reduced from the event
            stream whether or not capture is on.
    """

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        *,
        topology: Optional[NetworkTopology] = None,
        app: ARApplication = DEFAULT_AR_APP,
        manager_point: Optional[GeoPoint] = None,
        global_policy: Optional[GlobalSelectionPolicy] = None,
        selection_policy: Optional[object] = None,
        selection_policy_params: Optional[Dict[str, object]] = None,
        trace: Optional[Tracer] = None,
        faults: Optional["FaultInjector"] = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.app = app
        self.selection_policy = selection_policy
        self.selection_policy_params = dict(selection_policy_params or {})
        self.streams = RandomStreams(self.config.seed)
        self.sim = Simulator()
        self.metrics = MetricsCollector()
        self.trace = trace if trace is not None else Tracer.disabled()
        self.trace.subscribe(self.metrics.on_event)
        # NOTE: explicit None check — NetworkTopology has __len__, so an
        # empty (not-yet-populated) topology is falsy and `topology or ...`
        # would silently discard it.
        if topology is None:
            topology = NetworkTopology(rng=self.streams.get("network"))
        else:
            # Seed the caller's topology jitter from our streams so runs
            # are reproducible from the single config seed.
            topology.rng = self.streams.get("network")
        self.topology = topology

        self.manager_id = MANAGER_ID
        if not self.topology.has_endpoint(MANAGER_ID):
            point = manager_point or GeoPoint(41.0, -87.0)  # regional cloud
            self.topology.add_endpoint(
                NetworkEndpoint(MANAGER_ID, point, tier=NetworkTier.CLOUD)
            )
        policy = global_policy or GlobalSelectionPolicy(
            geo_filter=GeoProximityFilter(
                radius_km=self.config.discovery_radius_km,
                wide_radius_km=self.config.wide_radius_km,
            )
        )
        self.manager: ManagerLike
        if (
            self.config.control_plane_shards > 1
            or self.config.control_plane_replicas > 1
        ):
            # Deferred import: the control plane layers on core, not
            # under it. With shards=1, replicas=1 (the default) the
            # plain single manager runs — structurally bit-identical to
            # the seed, not merely behaviourally.
            from repro.controlplane.sim_driver import ShardedCentralManager

            self.manager = ShardedCentralManager(
                self,
                policy,
                shards=self.config.control_plane_shards,
                replicas=self.config.control_plane_replicas,
            )
        else:
            self.manager = CentralManager(self, policy)

        self.nodes: Dict[str, EdgeServer] = {}
        self.clients: Dict[str, ClientLike] = {}
        #: Construction arguments remembered per node id so a crashed
        #: node can be restarted *as the same identity* (fault plans and
        #: churn restart episodes both need this).
        self._node_specs: Dict[
            str, Tuple[HardwareProfile, EndpointSpec, bool, Optional[HostWorkloadSchedule]]
        ] = {}

        self.faults = faults
        if faults is not None:
            faults.tracer = self.trace
            self._install_fault_actions(faults)

    # ------------------------------------------------------------------
    # Client selection policy
    # ------------------------------------------------------------------
    def make_selection_policy(self, user_id: str):
        """A fresh, per-client selection policy instance.

        Resolution order: the system's ``selection_policy`` argument,
        else ``config.policy_spec`` (with the deprecated
        ``use_global_overhead`` mapped through), else GO. QoS admission
        (``config.qos_latency_ms``) wraps whatever was resolved, and
        the policy's private randomness is seeded deterministically from
        the config seed and the user id.
        """
        from repro.policy import build_policy
        from repro.sim.random import derive_seed

        spec = (
            self.selection_policy
            if self.selection_policy is not None
            else self.config.selection_policy_spec
        )
        return build_policy(
            spec,  # type: ignore[arg-type]
            params=self.selection_policy_params or None,
            qos_latency_ms=self.config.qos_latency_ms,
            seed=derive_seed(self.config.seed, f"policy.{user_id}"),
        )

    # ------------------------------------------------------------------
    # Node lifecycle
    # ------------------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        profile: HardwareProfile,
        spec: EndpointSpec,
        *,
        dedicated: bool = False,
        host_schedule: Optional[HostWorkloadSchedule] = None,
        start: bool = True,
    ) -> EdgeServer:
        """Register and (optionally) start a new edge node.

        A node id may be reused after :meth:`fail_node`: the dead node's
        endpoint is then *explicitly* replaced (stale memoized network
        state is invalidated with it), never silently overwritten.

        Raises:
            ValueError: if the id is already in use by an alive node, or
                collides with a non-node endpoint (a user or the
                manager).
        """
        existing = self.nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ValueError(f"node id already alive: {node_id!r}")
        if existing is None and self.topology.has_endpoint(node_id):
            raise ValueError(
                f"endpoint id {node_id!r} is already taken by a non-node "
                "endpoint (user or manager)"
            )
        self.topology.add_endpoint(spec.endpoint(node_id), replace=existing is not None)
        assert self.topology.has_endpoint(node_id)
        self._node_specs[node_id] = (profile, spec, dedicated, host_schedule)
        node = EdgeServer(
            self,
            node_id,
            profile,
            dedicated=dedicated,
            host_schedule=host_schedule,
        )
        self.nodes[node_id] = node
        if start:
            node.start()
        self._record_population()
        return node

    def spawn_node(
        self,
        node_id: str,
        profile: HardwareProfile,
        point: GeoPoint,
        *,
        tier: NetworkTier = NetworkTier.HOME_WIFI,
        isp: Optional[str] = None,
        uplink_mbps: Optional[float] = None,
        downlink_mbps: Optional[float] = None,
        access_extra_ms: float = 0.0,
        dedicated: bool = False,
        host_schedule: Optional[HostWorkloadSchedule] = None,
        start: bool = True,
    ) -> EdgeServer:
        """Deprecated: use :meth:`add_node` with an
        :class:`~repro.net.topology.EndpointSpec` (or
        :class:`~repro.api.ScenarioBuilder`) instead of seven unpacked
        network keywords. Thin wrapper; behaviour is identical."""
        warnings.warn(
            "EdgeSystem.spawn_node is deprecated; use add_node(node_id, "
            "profile, EndpointSpec(...)) or repro.api.ScenarioBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.add_node(
            node_id,
            profile,
            EndpointSpec(
                point,
                tier=tier,
                isp=isp,
                uplink_mbps=uplink_mbps,
                downlink_mbps=downlink_mbps,
                access_extra_ms=access_extra_ms,
            ),
            dedicated=dedicated,
            host_schedule=host_schedule,
            start=start,
        )

    def fail_node(self, node_id: str) -> None:
        """Kill a node without notification (crash / volunteer leaves).

        Clients holding a connection to it (attached or backup) are
        notified after ``failure_detection_ms``; the manager ages the
        node out via heartbeat timeout on its own.
        """
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return
        node.fail()
        self.trace.emit(NodeFail(self.sim.now, node_id))
        self._record_population()
        detection = self.config.failure_detection_ms
        # Hoisted out of the loop: a popular node schedules one detection
        # per observing client, and they all share this label.
        detect_label = node_id + ".detect"

        for client in list(self.clients.values()):
            if client.observes_node(node_id):
                handler = client.on_edge_failure
                self.sim.schedule(
                    detection,
                    lambda h=handler: h(node_id),
                    label=detect_label,
                )

    def restart_node(self, node_id: str) -> EdgeServer:
        """Bring a crashed node back under the *same* id.

        The restarted node is a **fresh process** on the remembered
        hardware/placement: a brand-new :class:`EdgeServer` (and
        admission machine), so its seqNum restarts at 0 and its what-if
        cache re-primes — no stale pre-crash state survives. Clients
        rediscover it at their next probing round exactly like a newly
        spawned volunteer.

        Raises:
            ValueError: if the id was never added, or is still alive.
        """
        spec = self._node_specs.get(node_id)
        if spec is None:
            raise ValueError(f"cannot restart unknown node: {node_id!r}")
        existing = self.nodes.get(node_id)
        if existing is not None and existing.alive:
            raise ValueError(f"cannot restart a node that is alive: {node_id!r}")
        profile, endpoint_spec, dedicated, host_schedule = spec
        node = self.add_node(
            node_id,
            profile,
            endpoint_spec,
            dedicated=dedicated,
            host_schedule=host_schedule,
        )
        self.trace.emit(NodeRestart(self.sim.now, node_id))
        return node

    # ------------------------------------------------------------------
    # Fault injection (repro.faults)
    # ------------------------------------------------------------------
    def _install_fault_actions(self, faults: "FaultInjector") -> None:
        """Schedule the plan's node-level transitions on the kernel.

        Message-level rules need no scheduling — drivers consult
        ``faults.decide()`` per message. Actions referencing nodes that
        do not exist yet (or died on their own) are skipped at fire
        time, so a plan can safely name churn-spawned nodes.
        """
        for action in faults.node_actions():
            self.sim.schedule_at(
                max(action.t_ms, self.sim.now),
                lambda a=action: self._apply_fault_action(a),
                label=f"fault.{action.rule_id}.{action.kind}",
            )

    def _apply_fault_action(self, action: "object") -> None:
        from repro.faults.injector import NodeAction

        assert isinstance(action, NodeAction)
        if action.kind == "crash":
            node = self.nodes.get(action.node_id)
            if node is None or not node.alive:
                return
            self.trace.emit(
                FaultInjected(
                    self.sim.now, action.rule_id, "crash", dst=action.node_id
                )
            )
            if self.faults is not None:
                self.faults.injected["crash"] += 1
            self.fail_node(action.node_id)
        elif action.kind == "restart":
            existing = self.nodes.get(action.node_id)
            if action.node_id not in self._node_specs or (
                existing is not None and existing.alive
            ):
                return
            self.restart_node(action.node_id)
        elif action.kind in ("gray_start", "gray_end"):
            node = self.nodes.get(action.node_id)
            if node is None or not node.alive:
                return
            kind = action.kind
            self.trace.emit(
                FaultInjected(self.sim.now, action.rule_id, kind, dst=action.node_id)
            )
            if self.faults is not None:
                self.faults.injected[kind] += 1
            if kind == "gray_start":
                node.processor.set_slowdown(
                    max(node.processor.slowdown_factor, action.factor)
                )
            else:
                # Back to whatever the host-workload schedule dictates.
                node._apply_host_slowdown()
        elif action.kind in ("outage_start", "outage_end"):
            # A global outage (shard is None) is enforced per message in
            # decide(); the scheduled action only marks the transition
            # in the trace so recovery analysis can bracket the window.
            # A shard-targeted outage instead drives the sharded
            # manager's primary-loss/recovery state machine directly.
            self.trace.emit(
                FaultInjected(
                    self.sim.now,
                    action.rule_id,
                    action.kind,
                    dst=f"shard:{action.shard}" if action.shard is not None else "",
                )
            )
            if action.shard is not None:
                if self.faults is not None:
                    self.faults.injected[action.kind] += 1
                manager = self.manager
                if action.kind == "outage_start" and hasattr(
                    manager, "on_shard_outage_start"
                ):
                    manager.on_shard_outage_start(action.shard, action.rule_id)
                elif action.kind == "outage_end" and hasattr(
                    manager, "on_shard_outage_end"
                ):
                    manager.on_shard_outage_end(action.shard, action.rule_id)

    def alive_node_ids(self) -> List[str]:
        return [node_id for node_id, node in self.nodes.items() if node.alive]

    def alive_node_count(self) -> int:
        return len(self.alive_node_ids())

    def _record_population(self) -> None:
        self.trace.emit(PopulationChanged(self.sim.now, self.alive_node_count()))

    # ------------------------------------------------------------------
    # Client lifecycle
    # ------------------------------------------------------------------
    def add_client_endpoint(self, user_id: str, spec: EndpointSpec) -> None:
        """Register a user device's network endpoint from a spec."""
        self.topology.add_endpoint(spec.endpoint(user_id))

    def register_client_endpoint(
        self,
        user_id: str,
        point: GeoPoint,
        *,
        tier: NetworkTier = NetworkTier.HOME_WIFI,
        isp: Optional[str] = None,
        uplink_mbps: Optional[float] = None,
        downlink_mbps: Optional[float] = None,
        access_extra_ms: float = 0.0,
    ) -> None:
        """Deprecated: use :meth:`add_client_endpoint` with an
        :class:`~repro.net.topology.EndpointSpec`. Thin wrapper."""
        warnings.warn(
            "EdgeSystem.register_client_endpoint is deprecated; use "
            "add_client_endpoint(user_id, EndpointSpec(...)) or "
            "repro.api.ScenarioBuilder",
            DeprecationWarning,
            stacklevel=2,
        )
        self.add_client_endpoint(
            user_id,
            EndpointSpec(
                point,
                tier=tier,
                isp=isp,
                uplink_mbps=uplink_mbps,
                downlink_mbps=downlink_mbps,
                access_extra_ms=access_extra_ms,
            ),
        )

    def add_client(self, client: ClientLike, *, start: bool = True) -> None:
        """Register (and by default start) a client.

        Args:
            client: anything satisfying :class:`~repro.core.client.
                ClientLike` — validated structurally here so a
                mis-shaped client fails at registration, not at the
                first node failure.
            start: keyword-only; False registers without starting (the
                caller will start it later, e.g. staggered arrival).
        """
        if not isinstance(client, ClientLike):
            missing = [
                name
                for name in ("user_id", "start", "observes_node", "on_edge_failure")
                if not hasattr(client, name)
            ]
            raise TypeError(
                f"client {client!r} does not satisfy ClientLike "
                f"(missing: {', '.join(missing) or 'attribute types'})"
            )
        user_id = client.user_id
        if user_id in self.clients:
            raise ValueError(f"client id already in use: {user_id!r}")
        if not self.topology.has_endpoint(user_id):
            raise ValueError(
                f"register the client endpoint before adding client {user_id!r}"
            )
        self.clients[user_id] = client
        if start:
            client.start()

    # ------------------------------------------------------------------
    def run_for(self, duration_ms: float) -> None:
        """Advance the simulation by ``duration_ms``."""
        self.sim.run_until(self.sim.now + duration_ms)

    def __repr__(self) -> str:
        return (
            f"EdgeSystem(nodes={self.alive_node_count()}/{len(self.nodes)}, "
            f"clients={len(self.clients)}, t={self.sim.now:.0f}ms)"
        )
