"""Protocol message types exchanged between clients, edges and the manager.

These are plain frozen dataclasses: the simulation passes them by
reference, and the live runtime (:mod:`repro.runtime`) serializes them to
JSON with the helpers at the bottom. Keeping one message vocabulary for
both backends is what makes the live runtime a faithful port rather than
a second implementation.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class NodeStatus:
    """Heartbeat snapshot an edge node reports to the Central Manager.

    The manager's *global* selection works only from these coarse fields
    — by design it "cannot entirely identify the environment
    heterogeneity" and leaves accuracy to client-side probing.
    """

    node_id: str
    lat: float
    lon: float
    geohash: str
    cores: int
    capacity_fps: float
    attached_users: int
    utilization: float
    dedicated: bool = False
    isp: Optional[str] = None
    reported_at_ms: float = 0.0

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)

    @property
    def availability_score(self) -> float:
        """Generic resource availability: free cores.

        This is the resource-availability signal global selection sorts
        by — and the weight the resource-aware WRR baseline uses. It is
        deliberately application-agnostic (``cores x (1 - utilization)``,
        what a generic LB sees), not per-application throughput: a
        resource-aware balancer knows machine sizes and utilization, but
        not how fast each machine runs *this* application's frames —
        one of the blind spots the paper's probing removes.
        """
        return max(0.0, self.cores * (1.0 - self.utilization))


@dataclass(frozen=True)
class DiscoveryQuery:
    """A client's edge-discovery request to the Central Manager."""

    user_id: str
    lat: float
    lon: float
    top_n: int
    isp: Optional[str] = None
    #: Node ids the client wants excluded (e.g. nodes it just saw fail).
    exclude: Tuple[str, ...] = ()

    @property
    def point(self) -> GeoPoint:
        return GeoPoint(self.lat, self.lon)


@dataclass(frozen=True)
class CandidateList:
    """The manager's reply: the TopN candidate edge list, best first."""

    user_id: str
    node_ids: Tuple[str, ...]
    generated_at_ms: float = 0.0
    widened: bool = False  # True if the wide-radius fallback was used

    def __len__(self) -> int:
        return len(self.node_ids)


@dataclass(frozen=True)
class ProbeReply:
    """Reply to ``Process_probe()`` (Table I).

    Carries the cached "what-if" processing delay plus the node-state
    information local selection policies need: the synchronization
    ``seq_num``, the number of attached users and their current
    processing delay (for the GO policy), per §IV-C/IV-D.
    """

    node_id: str
    what_if_ms: float
    seq_num: int
    attached_users: int
    current_proc_ms: float
    #: Projected processing delay for an *already-attached* user running
    #: at the standard rate (demand of the current n users, no +1).
    #: A client ranking its current node must use this, not
    #: ``what_if_ms`` (it is one of the n) and not ``current_proc_ms``
    #: (which reflects adaptively throttled rates and hides overload).
    stay_ms: float = 0.0


@dataclass(frozen=True)
class JoinReply:
    """Reply to ``Join()`` — accepted iff the seqNum still matched."""

    node_id: str
    accepted: bool
    seq_num: int


@dataclass(frozen=True)
class LeaveNotice:
    """Client -> edge ``Leave()`` notification."""

    user_id: str
    node_id: str
    reason: str = "switch"  # "switch" | "finish"


# ----------------------------------------------------------------------
# JSON helpers for the live runtime
# ----------------------------------------------------------------------
_MESSAGE_TYPES = {
    "NodeStatus": NodeStatus,
    "DiscoveryQuery": DiscoveryQuery,
    "CandidateList": CandidateList,
    "ProbeReply": ProbeReply,
    "JoinReply": JoinReply,
    "LeaveNotice": LeaveNotice,
}


def to_wire(message: Any) -> Dict[str, Any]:
    """Encode a message dataclass as a JSON-ready dict with a type tag."""
    type_name = type(message).__name__
    if type_name not in _MESSAGE_TYPES:
        raise TypeError(f"not a wire message type: {type_name}")
    payload = asdict(message)
    # Tuples JSON-ify to lists; normalise here so round-trips are stable.
    for key, value in payload.items():
        if isinstance(value, tuple):
            payload[key] = list(value)
    return {"type": type_name, "payload": payload}


def from_wire(data: Dict[str, Any]) -> Any:
    """Decode a dict produced by :func:`to_wire` back into a dataclass."""
    try:
        type_name = data["type"]
        payload = dict(data["payload"])
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed wire message: {data!r}") from exc
    try:
        cls = _MESSAGE_TYPES[type_name]
    except KeyError:
        raise ValueError(f"unknown wire message type: {type_name!r}") from None
    # Restore tuple-typed fields.
    for key in ("node_ids", "exclude"):
        if key in payload and isinstance(payload[key], list):
            payload[key] = tuple(payload[key])
    return cls(**payload)


_ = field  # re-exported convenience for subclasses in tests
