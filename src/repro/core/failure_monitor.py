"""Compatibility re-export: the failure monitor moved into the
protocol core (:mod:`repro.protocol.failure_monitor`) so both backends
share it through :class:`~repro.protocol.selection.SelectionMachine`."""

from repro.protocol.failure_monitor import FailureMonitor

__all__ = ["FailureMonitor"]
