"""Adaptive TopN / T_probing control (§IV-E, realized).

The paper leaves the robustness knobs manual: "Based on the level of
node churn and reliability of volunteer resources, TopN and T_probing
can be modified accordingly." This module closes that loop per client:

- every **failover** (covered or not) is evidence of churn: TopN grows
  by one (more backups) and the probing period shrinks multiplicatively
  (fresher backup lists) — the uncovered case reacts twice as hard;
- a **quiet interval** (no failovers for ``quiet_window_ms``) decays
  both knobs back toward their configured baseline, shedding the extra
  probing/synchronization overhead the paper warns about.

Attach with :meth:`AdaptiveRobustness.attach`; the controller observes
through the client's public counters, so the client needs no knowledge
of the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.client import EdgeClient


@dataclass
class AdaptiveRobustness:
    """Churn-driven controller for one client's TopN and T_probing.

    Args:
        min_top_n / max_top_n: bounds for the candidate-list size.
        min_period_ms / max_period_ms: bounds for the probing period.
        escalate_factor: multiplicative period shrink per failover.
        decay_factor: multiplicative period growth per quiet window.
        quiet_window_ms: failover-free time that counts as "quiet".
    """

    min_top_n: int = 2
    max_top_n: int = 6
    min_period_ms: float = 500.0
    max_period_ms: float = 8_000.0
    escalate_factor: float = 0.75
    decay_factor: float = 1.25
    quiet_window_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_top_n <= self.max_top_n:
            raise ValueError("need 1 <= min_top_n <= max_top_n")
        if not 0.0 < self.min_period_ms <= self.max_period_ms:
            raise ValueError("need 0 < min_period_ms <= max_period_ms")
        if not 0.0 < self.escalate_factor < 1.0:
            raise ValueError("escalate_factor must be in (0, 1)")
        if self.decay_factor <= 1.0:
            raise ValueError("decay_factor must be > 1")
        if self.quiet_window_ms <= 0:
            raise ValueError("quiet_window_ms must be positive")

    # ------------------------------------------------------------------
    def attach(self, client: "EdgeClient") -> None:
        """Install this controller on a client (one controller per client).

        Observation is pull-based: a lightweight tick scheduled on the
        client's simulator compares the client's failover counters since
        the last tick.
        """
        client.robustness_controller = self
        state = _ClientState(
            last_events=_failover_count(client),
            last_event_at_ms=client.system.sim.now,
        )

        def tick() -> None:
            if client._stopped:  # noqa: SLF001 - intentional lifecycle peek
                return
            now = client.system.sim.now
            events = _failover_count(client)
            uncovered = client.stats.uncovered_failures
            if events > state.last_events:
                hard = uncovered > state.last_uncovered
                self._escalate(client, hard=hard)
                state.last_events = events
                state.last_uncovered = uncovered
                state.last_event_at_ms = now
            elif now - state.last_event_at_ms >= self.quiet_window_ms:
                self._decay(client)
                state.last_event_at_ms = now
            client.system.sim.schedule(1_000.0, tick, label=f"{client.user_id}.adapt")

        client.system.sim.schedule(1_000.0, tick, label=f"{client.user_id}.adapt")

    # ------------------------------------------------------------------
    def _escalate(self, client: "EdgeClient", *, hard: bool) -> None:
        """React to observed churn; ``hard`` = an uncovered failure."""
        step = 2 if hard else 1
        client.top_n = min(self.max_top_n, client.top_n + step)
        factor = self.escalate_factor ** (2 if hard else 1)
        client.probing_period_ms = max(
            self.min_period_ms, client.probing_period_ms * factor
        )

    def _decay(self, client: "EdgeClient") -> None:
        """Shed overhead after a quiet window."""
        baseline_top_n = max(self.min_top_n, client.config.top_n)
        if client.top_n > baseline_top_n:
            client.top_n -= 1
        baseline_period = min(self.max_period_ms, client.config.probing_period_ms)
        client.probing_period_ms = min(
            baseline_period, client.probing_period_ms * self.decay_factor
        )


@dataclass
class _ClientState:
    last_events: int
    last_event_at_ms: float
    last_uncovered: int = 0


def _failover_count(client: "EdgeClient") -> int:
    return client.stats.covered_failovers + client.stats.uncovered_failures
