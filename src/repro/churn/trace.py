"""Churn traces: the full join/leave schedule of a dynamic experiment."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.churn.models import PoissonArrivalModel, WeibullLifetimeModel


@dataclass(frozen=True)
class NodeEpisode:
    """One volunteer node's presence interval.

    ``restart_ms`` (optional) turns the episode into a crash-and-return:
    the node fails at ``fail_ms`` and comes back *under the same id* at
    ``restart_ms`` — a rebooted volunteer rather than a permanent
    departure. The restarted node is a fresh process (seqNum 0,
    re-primed what-if cache); it stays up until the horizon.
    """

    node_id: str
    join_ms: float
    fail_ms: float
    restart_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fail_ms <= self.join_ms:
            raise ValueError(
                f"episode must have positive lifetime: {self.join_ms}..{self.fail_ms}"
            )
        if self.restart_ms is not None and self.restart_ms <= self.fail_ms:
            raise ValueError(
                f"restart {self.restart_ms} must come after failure {self.fail_ms}"
            )

    @property
    def lifetime_ms(self) -> float:
        return self.fail_ms - self.join_ms

    @property
    def kind(self) -> str:
        """``"restart"`` for crash-and-return episodes, else ``"fail"``."""
        return "restart" if self.restart_ms is not None else "fail"

    def alive_at(self, now_ms: float) -> bool:
        if self.join_ms <= now_ms < self.fail_ms:
            return True
        return self.restart_ms is not None and now_ms >= self.restart_ms


@dataclass(frozen=True)
class ChurnTrace:
    """An ordered collection of node episodes over a horizon."""

    episodes: List[NodeEpisode]
    horizon_ms: float

    def __len__(self) -> int:
        return len(self.episodes)

    def alive_count_at(self, now_ms: float) -> int:
        return sum(1 for e in self.episodes if e.alive_at(now_ms))

    def population_steps(self) -> List[tuple]:
        """(time, alive count) at every join/fail instant — Fig. 8's stairs."""
        events: List[tuple] = []
        for episode in self.episodes:
            events.append((episode.join_ms, 1))
            if episode.fail_ms < self.horizon_ms:
                events.append((episode.fail_ms, -1))
            if episode.restart_ms is not None and episode.restart_ms < self.horizon_ms:
                events.append((episode.restart_ms, 1))
        events.sort()
        steps: List[tuple] = []
        count = 0
        for time_ms, delta in events:
            count += delta
            steps.append((time_ms, count))
        return steps


def generate_trace(
    rng: random.Random,
    horizon_ms: float = 180_000.0,
    arrivals: Optional[PoissonArrivalModel] = None,
    lifetimes: Optional[WeibullLifetimeModel] = None,
    node_prefix: str = "vol",
    target_total_nodes: Optional[int] = None,
    max_attempts: int = 1_000,
) -> ChurnTrace:
    """Generate one churn trace.

    When ``target_total_nodes`` is given, configurations are regenerated
    until one with exactly that many nodes appears — the paper "randomly
    select[s] a configuration from multiple runs of this process, which
    results in a total of 18 edge nodes over a 3-minute timeline".

    Failure times are clipped to the horizon (a node outliving the run
    simply never fails). Every trace carries at least one node: an empty
    draw is rejected, since an experiment with zero edge nodes measures
    nothing.

    Raises:
        ValueError: if no acceptable configuration is found within
            ``max_attempts``.
    """
    if horizon_ms <= 0:
        raise ValueError(f"horizon must be positive: {horizon_ms}")
    arrivals = arrivals or PoissonArrivalModel()
    lifetimes = lifetimes or WeibullLifetimeModel()

    for _ in range(max_attempts):
        episodes: List[NodeEpisode] = []
        index = 1
        epoch_start = 0.0
        while epoch_start < horizon_ms:
            for join_ms in arrivals.sample_epoch_arrivals(rng, epoch_start):
                if join_ms >= horizon_ms:
                    continue
                lifetime = lifetimes.sample_lifetime_ms(rng)
                fail_ms = join_ms + lifetime
                episodes.append(
                    NodeEpisode(f"{node_prefix}-{index:03d}", join_ms, fail_ms)
                )
                index += 1
            epoch_start += arrivals.epoch_ms
        if not episodes:
            continue
        if target_total_nodes is not None and len(episodes) != target_total_nodes:
            continue
        episodes.sort(key=lambda e: e.join_ms)
        return ChurnTrace(episodes=episodes, horizon_ms=horizon_ms)

    raise ValueError(
        f"no churn configuration with {target_total_nodes} nodes found in "
        f"{max_attempts} attempts"
    )
