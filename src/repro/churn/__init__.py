"""Node churn: arrival/lifetime models, trace generation and injection.

§V-D2 models volunteer churn as: "the probability of nodes joining the
system every 30 seconds follows the Poisson distribution (k = 4 edge
nodes). Arriving nodes are randomly assigned a timestamp (second) in each
30 seconds period. And the lifetime of edge nodes is modeled using
Weibull distribution (average lifetime = 50 seconds)."

- :mod:`~repro.churn.models` — the Poisson-arrivals and Weibull-lifetime
  samplers.
- :mod:`~repro.churn.trace` — generate a full churn trace (join/fail
  event list), including the paper's "randomly select a configuration
  ... which results in a total of 18 edge nodes" rejection step.
- :mod:`~repro.churn.injector` — replay a trace against a running
  :class:`~repro.core.system.EdgeSystem`.
"""

from repro.churn.models import PoissonArrivalModel, WeibullLifetimeModel
from repro.churn.trace import ChurnTrace, NodeEpisode, generate_trace
from repro.churn.injector import ChurnInjector

__all__ = [
    "PoissonArrivalModel",
    "WeibullLifetimeModel",
    "NodeEpisode",
    "ChurnTrace",
    "generate_trace",
    "ChurnInjector",
]
