"""Stochastic models for volunteer node churn."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PoissonArrivalModel:
    """Epoch-based Poisson arrivals.

    Per epoch of ``epoch_ms``, the number of joining nodes is
    ``Poisson(k)``; each arrival lands at an independent uniform-random
    timestamp inside the epoch (the paper assigns "a timestamp (second)
    in each 30 seconds period" — we keep millisecond resolution).
    """

    k: float = 4.0
    epoch_ms: float = 30_000.0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive: {self.k}")
        if self.epoch_ms <= 0:
            raise ValueError(f"epoch_ms must be positive: {self.epoch_ms}")

    def sample_count(self, rng: random.Random) -> int:
        """Draw a Poisson(k) variate (Knuth's method; k is small)."""
        threshold = math.exp(-self.k)
        count = 0
        product = rng.random()
        while product > threshold:
            count += 1
            product *= rng.random()
        return count

    def sample_epoch_arrivals(self, rng: random.Random, epoch_start_ms: float) -> List[float]:
        """Arrival times for one epoch, sorted ascending."""
        count = self.sample_count(rng)
        times = [epoch_start_ms + rng.random() * self.epoch_ms for _ in range(count)]
        times.sort()
        return times


@dataclass(frozen=True)
class WeibullLifetimeModel:
    """Weibull node lifetimes.

    The paper fixes only the mean (50 s); the shape parameter is a free
    choice. ``shape = 1.5`` gives the right-skewed, new-node-unstable
    profile typical of volunteer-availability studies; the scale is
    derived so the mean is exact: ``scale = mean / Gamma(1 + 1/shape)``.
    """

    mean_ms: float = 50_000.0
    shape: float = 1.5

    def __post_init__(self) -> None:
        if self.mean_ms <= 0:
            raise ValueError(f"mean_ms must be positive: {self.mean_ms}")
        if self.shape <= 0:
            raise ValueError(f"shape must be positive: {self.shape}")

    @property
    def scale_ms(self) -> float:
        return self.mean_ms / math.gamma(1.0 + 1.0 / self.shape)

    def sample_lifetime_ms(self, rng: random.Random) -> float:
        """One Weibull lifetime (inverse-CDF sampling), floored at 1 s.

        The floor avoids degenerate sub-second nodes that could never
        even heartbeat once; it shifts the mean by well under 1%.
        """
        u = rng.random()
        # Guard the log against u == 0.
        u = max(u, 1e-12)
        lifetime = self.scale_ms * (-math.log(u)) ** (1.0 / self.shape)
        return max(lifetime, 1_000.0)
