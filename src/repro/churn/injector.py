"""Replaying a churn trace against a running system."""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.churn.trace import ChurnTrace, NodeEpisode
from repro.core.system import EdgeSystem
from repro.geo.point import GeoPoint
from repro.net.latency import NetworkTier
from repro.net.topology import EndpointSpec
from repro.nodes.hardware import HardwareProfile


class ChurnInjector:
    """Schedules spawn/fail events for every episode of a churn trace.

    Node "identities" (hardware profile + location) are drawn when the
    trace is installed — the paper "randomly match[es] 18 simulated edge
    nodes with 18 AWS ec2 instances". A custom ``placer`` callback can
    control placement; by default nodes scatter uniformly within
    ``placement_radius_km`` of ``center``.

    Args:
        system: target system (events go on its simulator).
        profiles: the pool of hardware profiles to match episodes with;
            cycled deterministically after shuffling with ``rng``.
        center / placement_radius_km: default placement disc.
        tier: network tier for spawned volunteer nodes.
    """

    def __init__(
        self,
        system: EdgeSystem,
        profiles: Sequence[HardwareProfile],
        *,
        center: GeoPoint,
        placement_radius_km: float = 40.0,
        tier: NetworkTier = NetworkTier.HOME_WIFI,
        rng: Optional[random.Random] = None,
        placer: Optional[Callable[[NodeEpisode], GeoPoint]] = None,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one hardware profile")
        self.system = system
        self.profiles = list(profiles)
        self.center = center
        self.placement_radius_km = placement_radius_km
        self.tier = tier
        self.rng = rng or system.streams.get("churn")
        self.placer = placer
        self.installed: Dict[str, HardwareProfile] = {}

    def install(self, trace: ChurnTrace) -> None:
        """Schedule every join and failure of the trace.

        Raises:
            ValueError: if any episode's node id collides with an
                existing node.
        """
        for episode in trace.episodes:
            if episode.node_id in self.system.nodes:
                raise ValueError(f"trace node id collides: {episode.node_id!r}")

        matched = self._match_profiles(trace.episodes)
        for episode in trace.episodes:
            profile = matched[episode.node_id]
            point = (
                self.placer(episode)
                if self.placer is not None
                else self._random_point()
            )
            self.installed[episode.node_id] = profile
            self._schedule_episode(episode, profile, point)

    def _match_profiles(
        self, episodes: Sequence[NodeEpisode]
    ) -> Dict[str, HardwareProfile]:
        pool = list(self.profiles)
        self.rng.shuffle(pool)
        matched: Dict[str, HardwareProfile] = {}
        for i, episode in enumerate(episodes):
            matched[episode.node_id] = pool[i % len(pool)]
        return matched

    def _random_point(self) -> GeoPoint:
        import math

        distance = self.placement_radius_km * math.sqrt(self.rng.random())
        bearing = self.rng.uniform(0.0, 2.0 * math.pi)
        return self.center.offset_km(
            distance * math.cos(bearing), distance * math.sin(bearing)
        )

    def _schedule_episode(
        self, episode: NodeEpisode, profile: HardwareProfile, point: GeoPoint
    ) -> None:
        sim = self.system.sim

        def spawn() -> None:
            self.system.add_node(
                episode.node_id,
                profile,
                EndpointSpec(point, tier=self.tier),
            )

        def fail() -> None:
            self.system.fail_node(episode.node_id)

        def restart() -> None:
            node = self.system.nodes.get(episode.node_id)
            if node is not None and node.alive:
                return  # never actually failed; nothing to restart
            self.system.restart_node(episode.node_id)

        if episode.join_ms >= sim.now:
            sim.schedule_at(episode.join_ms, spawn, label=f"{episode.node_id}.join")
        else:
            spawn()
        if episode.fail_ms < float("inf"):
            sim.schedule_at(
                max(episode.fail_ms, sim.now), fail, label=f"{episode.node_id}.fail"
            )
        if episode.restart_ms is not None:
            sim.schedule_at(
                max(episode.restart_ms, sim.now),
                restart,
                label=f"{episode.node_id}.restart",
            )
