"""Schedule search: hunt for invariant violations, shrink to reproducers.

The canonical chaos plans exercise every fault family once, in one
hand-picked arrangement. This module searches the space of arrangements:

- :class:`FaultSpace` types the sampling space — which fault families,
  over which windows, against which targets (edges, the user fleet,
  control-plane shards) — with the same settle-tail discipline the
  canonical plans follow, so every sampled schedule is one the system
  is *supposed* to recover from;
- :func:`sample_plan` draws one seeded :class:`FaultPlan` from a space
  (pure function of the RNG: the same hunt seed regenerates the same
  schedule);
- :func:`hunt` replays sampled schedules on the deterministic sim,
  runs the streaming invariant suite from :mod:`repro.verify` over each
  trace, and stops at the first violation;
- :func:`shrink` then reduces the violating schedule delta-debugging
  style — drop rules to a fixpoint, narrow activation windows, reduce
  glob targets to concrete ids — re-running after every step and
  keeping only reductions that still reproduce the violation;
- :class:`ReproArtifact` packages the result (plan + seed +
  ``SystemConfig`` overrides + expected violation) as a self-contained
  JSON file that :func:`replay_artifact` re-executes bit-identically.

Soundness rests on the injector's determinism contract: per-rule RNG
streams are derived from ``(plan_seed, rule_id)`` alone, so dropping or
reordering rules never perturbs the draws of the rules that remain —
a shrunk plan replays the surviving faults exactly as the original did.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import (
    FaultPlan,
    GrayNode,
    ManagerOutage,
    MessageFault,
    NodeCrash,
    Partition,
    Window,
    plan_from_dict,
    plan_to_dict,
)
from repro.verify import Violation

__all__ = [
    "FaultSpace",
    "HuntConfig",
    "HuntResult",
    "ReproArtifact",
    "sample_plan",
    "hunt",
    "shrink",
    "replay_artifact",
    "run_plan",
]

ARTIFACT_VERSION = 1

#: Fault families a space can sample from.
FAMILIES = ("message", "partition", "crash", "outage", "gray")


# ----------------------------------------------------------------------
# The sampling space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpace:
    """The typed space of schedules the hunt samples from.

    Every sampled plan respects the canonical settle discipline: all
    windows close and every crashed node restarts by
    ``active_fraction`` of the horizon, leaving a fault-free tail in
    which recovery must complete. A schedule that breaks the system
    *inside* that envelope is a genuine finding, not a plan that merely
    asked for the impossible (e.g. every edge dead at the final bell).
    """

    horizon_ms: float = 20_000.0
    edge_ids: Tuple[str, ...] = ("edge-a", "edge-b", "edge-c")
    user_pattern: str = "user-*"
    #: Control-plane shards eligible for targeted primary outages;
    #: empty = only whole-manager outages are sampled.
    shard_targets: Tuple[int, ...] = ()
    families: Tuple[str, ...] = FAMILIES
    max_rules: int = 5
    #: Fraction of the horizon in which faults may be active; the rest
    #: is the fault-free settle tail.
    active_fraction: float = 0.8
    allow_whole_manager_outage: bool = True

    def __post_init__(self) -> None:
        if not self.edge_ids:
            raise ValueError("FaultSpace needs at least one edge id")
        if self.max_rules < 1:
            raise ValueError(f"max_rules must be >= 1: {self.max_rules}")
        if not 0.1 <= self.active_fraction <= 1.0:
            raise ValueError(
                f"active_fraction must be in [0.1, 1]: {self.active_fraction}"
            )
        for fam in self.families:
            if fam not in FAMILIES:
                raise ValueError(f"unknown fault family: {fam!r}")


def _sample_window(space: FaultSpace, rng: random.Random) -> Window:
    h = space.horizon_ms
    hi = space.active_fraction
    start = rng.uniform(0.05, hi - 0.1) * h
    length = rng.uniform(0.05, 0.3) * h
    return Window(start, min(start + length, hi * h))


def sample_plan(space: FaultSpace, rng: random.Random) -> FaultPlan:
    """Draw one schedule from the space (pure function of the RNG)."""
    n_rules = rng.randint(1, space.max_rules)
    message_faults: List[MessageFault] = []
    partitions: List[Partition] = []
    crashes: List[NodeCrash] = []
    outages: List[ManagerOutage] = []
    gray_nodes: List[GrayNode] = []
    for i in range(n_rules):
        family = rng.choice(space.families)
        window = _sample_window(space, rng)
        if family == "message":
            mangle = rng.choice(("drop", "delay", "dup"))
            message_faults.append(
                MessageFault(
                    f"mf-{i}",
                    window,
                    src=space.user_pattern,
                    ops=(rng.choice(("frame", "join", "probe", "discover")),),
                    drop_p=rng.uniform(0.1, 0.6) if mangle == "drop" else 0.0,
                    delay_ms=rng.uniform(20.0, 120.0) if mangle == "delay" else 0.0,
                    delay_jitter_ms=rng.uniform(0.0, 40.0)
                    if mangle == "delay"
                    else 0.0,
                    delay_p=0.5 if mangle == "delay" else 1.0,
                    duplicate_p=rng.uniform(0.1, 0.4) if mangle == "dup" else 0.0,
                )
            )
        elif family == "partition":
            partitions.append(
                Partition(
                    f"part-{i}",
                    space.user_pattern,
                    rng.choice(space.edge_ids),
                    window,
                    symmetric=rng.random() < 0.7,
                )
            )
        elif family == "crash":
            h = space.horizon_ms
            at = rng.uniform(0.1, space.active_fraction - 0.15) * h
            restart = rng.uniform(
                at / h + 0.05, space.active_fraction
            ) * h
            crashes.append(
                NodeCrash(
                    f"crash-{i}",
                    rng.choice(space.edge_ids),
                    at,
                    restart_at_ms=restart,
                )
            )
        elif family == "outage":
            choices: List[Optional[int]] = list(space.shard_targets)
            if space.allow_whole_manager_outage or not choices:
                choices.append(None)
            outages.append(
                ManagerOutage(f"out-{i}", window, shard=rng.choice(choices))
            )
        else:  # gray
            gray_nodes.append(
                GrayNode(
                    f"gray-{i}",
                    rng.choice(space.edge_ids),
                    window,
                    slowdown=rng.uniform(2.0, 10.0),
                )
            )
    return FaultPlan(
        message_faults=tuple(message_faults),
        partitions=tuple(partitions),
        crashes=tuple(crashes),
        outages=tuple(outages),
        gray_nodes=tuple(gray_nodes),
    )


# ----------------------------------------------------------------------
# Replaying one schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HuntConfig:
    """Everything one hunt needs to replay schedules reproducibly."""

    scenario: str = "canonical"  # or "controlplane"
    attempts: int = 25
    horizon_ms: float = 20_000.0
    n_clients: int = 2
    top_n: int = 3
    shards: int = 2
    replicas: int = 2
    max_rules: int = 5
    #: SystemConfig fields to patch — the lever for hunting against
    #: deliberately weakened configurations.
    config_overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Cap on reduction re-runs during shrinking.
    shrink_budget: int = 64

    def __post_init__(self) -> None:
        if self.scenario not in ("canonical", "controlplane"):
            raise ValueError(f"unknown scenario: {self.scenario!r}")

    @property
    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.config_overrides)

    def space(self) -> FaultSpace:
        """The fault space this configuration implies."""
        if self.scenario == "controlplane":
            from repro.faults.scenarios import _controlplane_layout

            _, edge_ids, _, targets = _controlplane_layout(self.shards)
            return FaultSpace(
                horizon_ms=self.horizon_ms,
                edge_ids=tuple(edge_ids),
                shard_targets=tuple(targets),
                max_rules=self.max_rules,
            )
        return FaultSpace(
            horizon_ms=self.horizon_ms,
            edge_ids=("edge-a", "edge-b", "edge-c"),
            max_rules=self.max_rules,
        )


def run_plan(
    plan: FaultPlan, seed: int, config: HuntConfig
) -> Tuple[object, List[object]]:
    """Replay one schedule on the deterministic sim backend.

    Returns the :class:`~repro.faults.scenarios.ChaosReport` (whose
    ``violations`` field carries the streaming-invariant verdict) and
    the trace events. Same ``(plan, seed, config)`` → bit-identical
    trace; this is the primitive the hunt, the shrinker and artifact
    replay all share.
    """
    from repro.faults import scenarios

    if config.scenario == "controlplane":
        return scenarios.run_sim_controlplane_chaos(
            seed,
            shards=config.shards,
            replicas=config.replicas,
            horizon_ms=config.horizon_ms,
            n_clients=config.n_clients,
            top_n=config.top_n,
            plan=plan,
            config_overrides=config.overrides_dict or None,
        )
    return scenarios.run_sim_chaos(
        seed,
        horizon_ms=config.horizon_ms,
        n_clients=config.n_clients,
        plan=plan,
        top_n=config.top_n,
        config_overrides=config.overrides_dict or None,
    )


def _violations(report: object) -> List[Violation]:
    return [v for v in getattr(report, "violations", []) if isinstance(v, Violation)]


def _reproduces(violations: Sequence[Violation], signature: str) -> bool:
    return any(v.invariant == signature for v in violations)


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def _without_rule(plan: FaultPlan, rule_id: str) -> FaultPlan:
    return FaultPlan(
        message_faults=tuple(
            r for r in plan.message_faults if r.rule_id != rule_id
        ),
        partitions=tuple(r for r in plan.partitions if r.rule_id != rule_id),
        crashes=tuple(r for r in plan.crashes if r.rule_id != rule_id),
        outages=tuple(r for r in plan.outages if r.rule_id != rule_id),
        gray_nodes=tuple(r for r in plan.gray_nodes if r.rule_id != rule_id),
    )


def _replace_rule(plan: FaultPlan, rule: object) -> FaultPlan:
    """Swap in a mutated rule, keyed by its (unchanged) rule id."""

    def swap(rules: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return tuple(
            rule if r.rule_id == getattr(rule, "rule_id") else r for r in rules
        )

    return FaultPlan(
        message_faults=swap(plan.message_faults),
        partitions=swap(plan.partitions),
        crashes=swap(plan.crashes),
        outages=swap(plan.outages),
        gray_nodes=swap(plan.gray_nodes),
    )


def _narrowed_variants(rule: object) -> List[object]:
    """Cheaper variants of one rule: halved window, or concrete targets."""
    from dataclasses import replace as dc_replace

    variants: List[object] = []
    window = getattr(rule, "window", None)
    if window is not None and window.end_ms != float("inf"):
        span = window.end_ms - window.start_ms
        if span > 500.0:
            half = span / 2.0
            variants.append(
                dc_replace(rule, window=Window(window.start_ms, window.end_ms - half))
            )
            variants.append(
                dc_replace(rule, window=Window(window.start_ms + half, window.end_ms))
            )
    if isinstance(rule, NodeCrash) and rule.restart_at_ms is not None:
        span = rule.restart_at_ms - rule.at_ms
        if span > 500.0:
            variants.append(
                dc_replace(rule, restart_at_ms=rule.at_ms + span / 2.0)
            )
    return variants


def _target_variants(rule: object, concrete_users: Sequence[str]) -> List[object]:
    """Glob targets narrowed to single concrete ids (``user-*`` → one user)."""
    from dataclasses import replace as dc_replace

    variants: List[object] = []
    if isinstance(rule, MessageFault) and rule.src.endswith("*"):
        variants.extend(dc_replace(rule, src=u) for u in concrete_users)
    if isinstance(rule, Partition) and rule.a.endswith("*"):
        variants.extend(dc_replace(rule, a=u) for u in concrete_users)
    return variants


def shrink(
    plan: FaultPlan,
    seed: int,
    config: HuntConfig,
    signature: str,
    *,
    on_step: Optional[Callable[[str, FaultPlan, FaultPlan, bool], None]] = None,
) -> Tuple[FaultPlan, int]:
    """Reduce a violating schedule to a minimal reproducer.

    Classic delta-debugging structure, specialised to fault plans:

    1. **drop rules** — try removing each rule; loop to a fixpoint
       (a 1-minimal plan: removing any single rule loses the bug);
    2. **narrow windows** — halve each surviving rule's activation
       window (keep either half that still reproduces) and pull crash
       restarts earlier;
    3. **reduce targets** — replace fleet globs with single concrete
       ids.

    Reproduction means: replaying the reduced plan with the *same* seed
    still yields a violation of the ``signature`` invariant. Every
    candidate costs one sim run; ``config.shrink_budget`` caps the
    total. Returns the reduced plan and the number of runs spent.
    """
    runs = 0

    def still_fails(candidate: FaultPlan) -> bool:
        nonlocal runs
        runs += 1
        report, _ = run_plan(candidate, seed, config)
        return _reproduces(_violations(report), signature)

    def budget_left() -> bool:
        return runs < config.shrink_budget

    # Phase 1: drop rules to a fixpoint.
    changed = True
    while changed and budget_left():
        changed = False
        for rule in list(plan.all_rules()):
            if len(plan) == 1 or not budget_left():
                break
            candidate = _without_rule(plan, rule.rule_id)  # type: ignore[attr-defined]
            kept = still_fails(candidate)
            if on_step is not None:
                on_step("drop_rules", plan, candidate, kept)
            if kept:
                plan = candidate
                changed = True

    # Phase 2: narrow windows (repeat so halving compounds).
    changed = True
    while changed and budget_left():
        changed = False
        for rule in list(plan.all_rules()):
            if not budget_left():
                break
            for variant in _narrowed_variants(rule):
                if not budget_left():
                    break
                candidate = _replace_rule(plan, variant)
                kept = still_fails(candidate)
                if on_step is not None:
                    on_step("narrow_window", plan, candidate, kept)
                if kept:
                    plan = candidate
                    changed = True
                    break

    # Phase 3: concrete targets.
    concrete_users = [f"user-{i + 1:02d}" for i in range(config.n_clients)]
    for rule in list(plan.all_rules()):
        if not budget_left():
            break
        for variant in _target_variants(rule, concrete_users):
            if not budget_left():
                break
            candidate = _replace_rule(plan, variant)
            kept = still_fails(candidate)
            if on_step is not None:
                on_step("reduce_targets", plan, candidate, kept)
            if kept:
                plan = candidate
                break

    return plan, runs


# ----------------------------------------------------------------------
# The repro artifact
# ----------------------------------------------------------------------
@dataclass
class ReproArtifact:
    """A self-contained, replayable reproducer for one violation.

    Everything a fresh process needs to re-execute the violating run
    bit-identically: the (shrunk) plan, the run seed, the scenario and
    its ``SystemConfig`` overrides, plus the expected violation so the
    replay can assert it reproduced *the same* bug, not merely *a* bug.
    """

    scenario: str
    seed: int
    plan: FaultPlan
    violation: Violation
    config_overrides: Dict[str, Any] = field(default_factory=dict)
    horizon_ms: float = 20_000.0
    n_clients: int = 2
    top_n: int = 3
    shards: int = 2
    replicas: int = 2
    hunt_seed: Optional[int] = None
    version: int = ARTIFACT_VERSION

    def hunt_config(self) -> HuntConfig:
        return HuntConfig(
            scenario=self.scenario,
            horizon_ms=self.horizon_ms,
            n_clients=self.n_clients,
            top_n=self.top_n,
            shards=self.shards,
            replicas=self.replicas,
            config_overrides=tuple(sorted(self.config_overrides.items())),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "scenario": self.scenario,
            "seed": self.seed,
            "plan": plan_to_dict(self.plan),
            "violation": self.violation.to_dict(),
            "config_overrides": dict(self.config_overrides),
            "horizon_ms": self.horizon_ms,
            "n_clients": self.n_clients,
            "top_n": self.top_n,
            "shards": self.shards,
            "replicas": self.replicas,
            "hunt_seed": self.hunt_seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReproArtifact":
        return cls(
            scenario=data["scenario"],
            seed=data["seed"],
            plan=plan_from_dict(data["plan"]),
            violation=Violation.from_dict(data["violation"]),
            config_overrides=dict(data.get("config_overrides", {})),
            horizon_ms=data.get("horizon_ms", 20_000.0),
            n_clients=data.get("n_clients", 2),
            top_n=data.get("top_n", 3),
            shards=data.get("shards", 2),
            replicas=data.get("replicas", 2),
            hunt_seed=data.get("hunt_seed"),
            version=data.get("version", ARTIFACT_VERSION),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "ReproArtifact":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def replay_artifact(
    artifact: ReproArtifact,
) -> Tuple[object, List[object], bool]:
    """Re-execute a reproducer and check it reproduced the same bug.

    Returns ``(report, events, reproduced)`` where ``reproduced`` is
    True iff some replayed violation matches the artifact's expected
    one *exactly* — same invariant, same event index, same timestamp,
    same subject: the bit-for-bit determinism contract.
    """
    report, events = run_plan(artifact.plan, artifact.seed, artifact.hunt_config())
    expected = artifact.violation
    reproduced = any(v == expected for v in _violations(report))
    return report, events, reproduced


# ----------------------------------------------------------------------
# The hunt loop
# ----------------------------------------------------------------------
@dataclass
class HuntResult:
    """What one hunt did: attempts made, and the find (if any)."""

    found: bool
    attempts: int
    hunt_seed: int
    artifact: Optional[ReproArtifact] = None
    original_rules: int = 0
    shrunk_rules: int = 0
    shrink_runs: int = 0
    #: All violations from the *original* (pre-shrink) violating run.
    violations: List[Violation] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        lines = [
            f"hunt seed={self.hunt_seed} attempts={self.attempts} "
            f"found={self.found}"
        ]
        if self.artifact is not None:
            lines.append(
                f"shrunk {self.original_rules} -> {self.shrunk_rules} rules "
                f"in {self.shrink_runs} replays"
            )
            lines.append(f"violation: {self.artifact.violation}")
            lines.extend("  " + line for line in self.artifact.plan.describe())
        return lines


def hunt(
    config: HuntConfig,
    hunt_seed: int = 0,
    *,
    tracer: Optional[object] = None,
) -> HuntResult:
    """Search seeded schedules for an invariant violation and shrink it.

    Deterministic end to end: attempt ``i`` samples its plan from
    ``Random(f"hunt:{hunt_seed}:{i}")`` and replays it with run seed
    ``hunt_seed + i``, so the same hunt seed always finds the same bug
    by the same route. Progress is emitted as ``hunt_attempt`` /
    ``shrink_step`` trace events when a tracer is supplied.
    """
    from repro.obs.events import HuntAttempt, ShrinkStep

    space = config.space()

    def emit(event: object) -> None:
        if tracer is not None:
            tracer.emit(event)  # type: ignore[attr-defined]

    for attempt in range(config.attempts):
        rng = random.Random(f"hunt:{hunt_seed}:{attempt}")
        plan = sample_plan(space, rng)
        run_seed = hunt_seed + attempt
        report, _ = run_plan(plan, run_seed, config)
        violations = _violations(report)
        emit(
            HuntAttempt(
                float(attempt),
                attempt=attempt,
                plan_seed=run_seed,
                rules=len(plan),
                violations=len(violations),
                invariant=violations[0].invariant if violations else "",
            )
        )
        if not violations:
            continue

        first = violations[0]
        signature = first.invariant

        def on_step(
            action: str, before: FaultPlan, after: FaultPlan, kept: bool
        ) -> None:
            emit(
                ShrinkStep(
                    float(attempt),
                    action=action,
                    rules_before=len(before),
                    rules_after=len(after),
                    kept=kept,
                )
            )

        shrunk, runs = shrink(
            plan, run_seed, config, signature, on_step=on_step
        )
        # Pin the expected violation to the shrunk plan's own replay.
        final_report, _ = run_plan(shrunk, run_seed, config)
        final_violations = _violations(final_report)
        expected = next(
            (v for v in final_violations if v.invariant == signature),
            final_violations[0] if final_violations else first,
        )
        artifact = ReproArtifact(
            scenario=config.scenario,
            seed=run_seed,
            plan=shrunk,
            violation=expected,
            config_overrides=config.overrides_dict,
            horizon_ms=config.horizon_ms,
            n_clients=config.n_clients,
            top_n=config.top_n,
            shards=config.shards,
            replicas=config.replicas,
            hunt_seed=hunt_seed,
        )
        return HuntResult(
            found=True,
            attempts=attempt + 1,
            hunt_seed=hunt_seed,
            artifact=artifact,
            original_rules=len(plan),
            shrunk_rules=len(shrunk),
            shrink_runs=runs,
            violations=violations,
        )
    return HuntResult(found=False, attempts=config.attempts, hunt_seed=hunt_seed)
