"""repro.faults — deterministic fault injection for both backends.

Declare a :class:`FaultPlan` (message drop/delay/duplication, asymmetric
partitions, node crash *and restart*, manager outages, gray nodes), bind
it to a seed in a :class:`FaultInjector`, and hand it to either backend:

- sim: ``EdgeSystem(..., faults=injector)`` — faults replay
  bit-identically for a given seed;
- live: ``ChaosController(cluster, injector)`` from
  :mod:`repro.faults.scenarios` drives the same plan against a loopback
  cluster on the wall clock.

Every injected fault emits a typed
:class:`~repro.obs.events.FaultInjected` trace event; every recovery
action the system takes in response already has its own event
(``covered_failover``, ``degraded_fallback``, ``node_restart``,
``breaker_transition``, ``retry_scheduled``), so a chaos run's full
cause-and-effect chain is reconstructable from one trace.
"""

from repro.faults.injector import (
    MANAGER_ID,
    FaultInjector,
    MessageDecision,
    NodeAction,
)
from repro.faults.plan import (
    MESSAGE_OPS,
    FaultPlan,
    GrayNode,
    ManagerOutage,
    MessageFault,
    NodeCrash,
    Partition,
    Window,
    plan_from_dict,
    plan_to_dict,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "MessageDecision",
    "NodeAction",
    "MessageFault",
    "Partition",
    "NodeCrash",
    "ManagerOutage",
    "GrayNode",
    "Window",
    "MESSAGE_OPS",
    "MANAGER_ID",
    "plan_to_dict",
    "plan_from_dict",
]
