"""Composable, declarative fault plans.

A :class:`FaultPlan` is an ordered collection of rules, each with an
activation window expressed in *plan time* — milliseconds since the
scenario started. The sim backend interprets plan time as simulation
time; the live backend maps it onto the wall clock through a scale
factor (see :class:`repro.faults.injector.FaultInjector` and the chaos
controller in :mod:`repro.faults.scenarios`). The plan itself is pure
data: it holds no randomness and no clocks, which is what makes one
plan drivable through both backends and bit-reproducible in the sim.

Rule families:

- :class:`MessageFault` — per-link message drop / extra delay /
  duplication / reordering, matched by source, destination and
  operation patterns (``fnmatch``-style, so ``user-*`` covers a fleet).
- :class:`Partition` — an (optionally asymmetric) hard cut between two
  endpoint patterns: matching messages never arrive while the window
  is active. Client↔edge and edge↔manager partitions are both just
  endpoint patterns.
- :class:`NodeCrash` — crash at ``at_ms`` and, unlike the churn trace's
  permanent deaths, optionally *restart the same node id* at
  ``restart_at_ms`` (exercising Algorithm 1's seqNum reset and the
  what-if cache re-prime).
- :class:`ManagerOutage` — the Central Manager is unreachable during
  the window (discovery and heartbeats black-hole; the live chaos
  controller also stops the real server).
- :class:`GrayNode` — the node keeps heartbeating normally but serves
  frames ``slowdown``× slower during the window: the failure the
  liveness check cannot see, caught only by the performance monitor's
  drift trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Window",
    "MessageFault",
    "Partition",
    "NodeCrash",
    "ManagerOutage",
    "GrayNode",
    "FaultPlan",
    "MESSAGE_OPS",
    "plan_to_dict",
    "plan_from_dict",
]

#: Every message operation an injector can intercept (mirrors the live
#: wire protocol ops; the sim's method calls map onto the same names).
MESSAGE_OPS = (
    "discover",
    "heartbeat",
    "probe",
    "join",
    "unexpected_join",
    "leave",
    "frame",
)


@dataclass(frozen=True)
class Window:
    """A half-open activation interval ``[start_ms, end_ms)`` in plan time."""

    start_ms: float = 0.0
    end_ms: float = float("inf")

    def __post_init__(self) -> None:
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"window must have positive length: {self.start_ms}..{self.end_ms}"
            )

    def contains(self, now_ms: float) -> bool:
        return self.start_ms <= now_ms < self.end_ms


def _matches(pattern: str, value: str) -> bool:
    return fnmatchcase(value, pattern)


@dataclass(frozen=True)
class MessageFault:
    """Probabilistic per-link message mangling while the window is active.

    Matching draws are made from the rule's own deterministic stream
    (derived from the plan seed and ``rule_id``), so two runs with the
    same seed mangle exactly the same messages.
    """

    rule_id: str
    window: Window = field(default_factory=Window)
    src: str = "*"
    dst: str = "*"
    ops: Tuple[str, ...] = ()  # empty = every op
    drop_p: float = 0.0
    delay_ms: float = 0.0
    delay_jitter_ms: float = 0.0
    delay_p: float = 1.0
    duplicate_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_p", "duplicate_p", "delay_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{self.rule_id}: {name} must be in [0,1]: {p}")
        for op in self.ops:
            if op not in MESSAGE_OPS:
                raise ValueError(f"{self.rule_id}: unknown op {op!r}")
        if self.delay_ms < 0 or self.delay_jitter_ms < 0:
            raise ValueError(f"{self.rule_id}: delays must be non-negative")

    def matches(self, src: str, dst: str, op: str, now_ms: float) -> bool:
        return (
            self.window.contains(now_ms)
            and (not self.ops or op in self.ops)
            and _matches(self.src, src)
            and _matches(self.dst, dst)
        )


@dataclass(frozen=True)
class Partition:
    """A hard network cut between two endpoint patterns.

    Asymmetric by default (``a -> b`` blocked, ``b -> a`` untouched);
    ``symmetric=True`` cuts both directions. No randomness involved —
    partitions are deterministic by construction.
    """

    rule_id: str
    a: str
    b: str
    window: Window = field(default_factory=Window)
    symmetric: bool = True

    def blocks(self, src: str, dst: str, now_ms: float) -> bool:
        if not self.window.contains(now_ms):
            return False
        if _matches(self.a, src) and _matches(self.b, dst):
            return True
        return self.symmetric and _matches(self.b, src) and _matches(self.a, dst)


@dataclass(frozen=True)
class NodeCrash:
    """Crash ``node_id`` at ``at_ms``; optionally restart it later."""

    rule_id: str
    node_id: str
    at_ms: float
    restart_at_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_at_ms is not None and self.restart_at_ms <= self.at_ms:
            raise ValueError(
                f"{self.rule_id}: restart {self.restart_at_ms} must come "
                f"after crash {self.at_ms}"
            )


@dataclass(frozen=True)
class ManagerOutage:
    """The Central Manager is unreachable while the window is active.

    With the default ``shard=None`` the whole manager goes dark (the
    seed behaviour: discovery and heartbeats black-hole). A shard index
    instead targets one control-plane shard: its primary replica goes
    down for the window, exercising standby promotion and, for the
    unlucky queries, the degraded-fallback path — the rest of the
    control plane keeps serving.
    """

    rule_id: str
    window: Window
    shard: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shard is not None and self.shard < 0:
            raise ValueError(f"{self.rule_id}: shard must be >= 0: {self.shard}")

    def active(self, now_ms: float) -> bool:
        return self.window.contains(now_ms)


@dataclass(frozen=True)
class GrayNode:
    """Heartbeat-alive but ``slowdown``× slower frame service in-window."""

    rule_id: str
    node_id: str
    window: Window
    slowdown: float = 10.0

    def __post_init__(self) -> None:
        if self.slowdown < 1.0:
            raise ValueError(
                f"{self.rule_id}: gray slowdown must be >= 1: {self.slowdown}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """One seedable, backend-agnostic fault schedule.

    The plan is inert data; pair it with a seed inside a
    :class:`repro.faults.injector.FaultInjector` to get deterministic
    draws. Rule ids must be unique — they name the per-rule random
    streams and the ``rule_id`` field of emitted
    :class:`~repro.obs.events.FaultInjected` events.
    """

    message_faults: Tuple[MessageFault, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()
    outages: Tuple[ManagerOutage, ...] = ()
    gray_nodes: Tuple[GrayNode, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for rule in self.all_rules():
            if rule.rule_id in seen:
                raise ValueError(f"duplicate rule id: {rule.rule_id!r}")
            seen.add(rule.rule_id)

    def all_rules(self) -> Sequence[object]:
        return (
            *self.message_faults,
            *self.partitions,
            *self.crashes,
            *self.outages,
            *self.gray_nodes,
        )

    def __len__(self) -> int:
        return len(self.all_rules())

    def describe(self) -> List[str]:
        """One human-readable line per rule (CLI summaries)."""
        lines: List[str] = []
        for mf in self.message_faults:
            parts = []
            if mf.drop_p:
                parts.append(f"drop {mf.drop_p:.0%}")
            if mf.delay_ms or mf.delay_jitter_ms:
                parts.append(f"delay {mf.delay_ms:+.0f}±{mf.delay_jitter_ms:.0f}ms")
            if mf.duplicate_p:
                parts.append(f"dup {mf.duplicate_p:.0%}")
            ops = ",".join(mf.ops) if mf.ops else "*"
            lines.append(
                f"{mf.rule_id}: {' '.join(parts) or 'noop'} on "
                f"{mf.src}->{mf.dst} [{ops}] "
                f"@{mf.window.start_ms:.0f}..{mf.window.end_ms:.0f}"
            )
        for p in self.partitions:
            arrow = "<->" if p.symmetric else "->"
            lines.append(
                f"{p.rule_id}: partition {p.a}{arrow}{p.b} "
                f"@{p.window.start_ms:.0f}..{p.window.end_ms:.0f}"
            )
        for c in self.crashes:
            restart = (
                f", restart @{c.restart_at_ms:.0f}"
                if c.restart_at_ms is not None
                else ""
            )
            lines.append(f"{c.rule_id}: crash {c.node_id} @{c.at_ms:.0f}{restart}")
        for o in self.outages:
            target = "manager outage" if o.shard is None else f"shard {o.shard} outage"
            lines.append(
                f"{o.rule_id}: {target} "
                f"@{o.window.start_ms:.0f}..{o.window.end_ms:.0f}"
            )
        for g in self.gray_nodes:
            lines.append(
                f"{g.rule_id}: gray {g.node_id} x{g.slowdown:.0f} "
                f"@{g.window.start_ms:.0f}..{g.window.end_ms:.0f}"
            )
        return lines


# --- JSON round-tripping -------------------------------------------------
#
# Plans travel inside repro artifacts emitted by the schedule search
# (see repro.faults.search), so they need a stable wire form. Unbounded
# windows serialize ``end_ms`` as null — JSON has no Infinity.


def _window_to_dict(w: Window) -> Dict[str, Any]:
    return {
        "start_ms": w.start_ms,
        "end_ms": None if w.end_ms == float("inf") else w.end_ms,
    }


def _window_from_dict(data: Dict[str, Any]) -> Window:
    end = data.get("end_ms")
    return Window(
        start_ms=float(data.get("start_ms", 0.0)),
        end_ms=float("inf") if end is None else float(end),
    )


def plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """A JSON-safe dict that :func:`plan_from_dict` round-trips exactly."""
    return {
        "message_faults": [
            {
                "rule_id": mf.rule_id,
                "window": _window_to_dict(mf.window),
                "src": mf.src,
                "dst": mf.dst,
                "ops": list(mf.ops),
                "drop_p": mf.drop_p,
                "delay_ms": mf.delay_ms,
                "delay_jitter_ms": mf.delay_jitter_ms,
                "delay_p": mf.delay_p,
                "duplicate_p": mf.duplicate_p,
            }
            for mf in plan.message_faults
        ],
        "partitions": [
            {
                "rule_id": p.rule_id,
                "a": p.a,
                "b": p.b,
                "window": _window_to_dict(p.window),
                "symmetric": p.symmetric,
            }
            for p in plan.partitions
        ],
        "crashes": [
            {
                "rule_id": c.rule_id,
                "node_id": c.node_id,
                "at_ms": c.at_ms,
                "restart_at_ms": c.restart_at_ms,
            }
            for c in plan.crashes
        ],
        "outages": [
            {
                "rule_id": o.rule_id,
                "window": _window_to_dict(o.window),
                "shard": o.shard,
            }
            for o in plan.outages
        ],
        "gray_nodes": [
            {
                "rule_id": g.rule_id,
                "node_id": g.node_id,
                "window": _window_to_dict(g.window),
                "slowdown": g.slowdown,
            }
            for g in plan.gray_nodes
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> FaultPlan:
    """Rebuild a :class:`FaultPlan` from :func:`plan_to_dict` output."""
    return FaultPlan(
        message_faults=tuple(
            MessageFault(
                rule_id=mf["rule_id"],
                window=_window_from_dict(mf.get("window", {})),
                src=mf.get("src", "*"),
                dst=mf.get("dst", "*"),
                ops=tuple(mf.get("ops", ())),
                drop_p=mf.get("drop_p", 0.0),
                delay_ms=mf.get("delay_ms", 0.0),
                delay_jitter_ms=mf.get("delay_jitter_ms", 0.0),
                delay_p=mf.get("delay_p", 1.0),
                duplicate_p=mf.get("duplicate_p", 0.0),
            )
            for mf in data.get("message_faults", ())
        ),
        partitions=tuple(
            Partition(
                rule_id=p["rule_id"],
                a=p["a"],
                b=p["b"],
                window=_window_from_dict(p.get("window", {})),
                symmetric=p.get("symmetric", True),
            )
            for p in data.get("partitions", ())
        ),
        crashes=tuple(
            NodeCrash(
                rule_id=c["rule_id"],
                node_id=c["node_id"],
                at_ms=c["at_ms"],
                restart_at_ms=c.get("restart_at_ms"),
            )
            for c in data.get("crashes", ())
        ),
        outages=tuple(
            ManagerOutage(
                rule_id=o["rule_id"],
                window=_window_from_dict(o.get("window", {})),
                shard=o.get("shard"),
            )
            for o in data.get("outages", ())
        ),
        gray_nodes=tuple(
            GrayNode(
                rule_id=g["rule_id"],
                node_id=g["node_id"],
                window=_window_from_dict(g.get("window", {})),
                slowdown=g.get("slowdown", 10.0),
            )
            for g in data.get("gray_nodes", ())
        ),
    )
