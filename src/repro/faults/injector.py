"""The seeded fault-injection engine shared by both backends.

A :class:`FaultInjector` binds one :class:`~repro.faults.plan.FaultPlan`
to a seed. Every probabilistic rule draws from its **own** named random
stream (derived ``sha256(seed, rule_id)`` via
:class:`~repro.sim.random.RandomStreams`), so adding or removing one
rule never perturbs another rule's draws, and the same seed replays the
exact same faults.

Both backends consult the injector at their protocol-driver boundary:

- the sim's :class:`~repro.core.client.EdgeClient` /
  :class:`~repro.core.edge_server.EdgeServer` call :meth:`decide`
  before delivering discovery/probe/join/frame/heartbeat messages, and
  ``EdgeSystem(..., faults=injector)`` schedules :meth:`node_actions`
  on the kernel at construction;
- the live :class:`~repro.runtime.client_runtime.LiveClient` /
  :class:`~repro.runtime.edge_server.LiveEdgeServer` call the same
  :meth:`decide` before touching a socket, and the chaos controller in
  :mod:`repro.faults.scenarios` executes :meth:`node_actions` on the
  wall clock.

The no-faults fast path is a single ``injector is None`` check at every
intercept site — a system built without an injector runs bit-identical
to one that predates this module.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.faults.plan import FaultPlan, MessageFault
from repro.obs.events import FaultInjected
from repro.obs.tracer import Tracer
from repro.sim.random import RandomStreams

__all__ = ["MessageDecision", "NodeAction", "FaultInjector", "MANAGER_ID"]

#: The endpoint id both backends use for the Central Manager in fault
#: matching (the sim's real manager id; the live drivers adopt it for
#: rule matching so one plan covers both).
MANAGER_ID = "central-manager"


@dataclass(frozen=True)
class MessageDecision:
    """The injector's verdict for one message send."""

    deliver: bool = True
    extra_delay_ms: float = 0.0
    copies: int = 1
    rule_id: str = ""
    kind: str = ""


#: Shared verdict for the overwhelmingly common "no fault" case — one
#: allocation for the whole program keeps the faulted hot path cheap.
_DELIVER = MessageDecision()


@dataclass(frozen=True)
class NodeAction:
    """One scheduled node-level fault transition.

    ``kind`` is ``crash`` / ``restart`` / ``gray_start`` / ``gray_end``
    / ``outage_start`` / ``outage_end``; ``node_id`` is empty for
    manager-outage actions. ``factor`` carries the gray slowdown;
    ``shard`` carries the target of a shard-scoped manager outage
    (None for the seed's whole-manager outage).
    """

    t_ms: float
    kind: str
    rule_id: str
    node_id: str = ""
    factor: float = 1.0
    shard: Optional[int] = None


class FaultInjector:
    """Deterministic fault decisions for one (plan, seed) pair.

    Args:
        plan: the fault schedule.
        seed: root of the per-rule random streams.
        tracer: where :class:`~repro.obs.events.FaultInjected` events go
            (settable later; the sim's :class:`EdgeSystem` wires its own).
        event_clock: optional override for event timestamps — the live
            backend passes ``tracer.now`` so fault events share the
            wall-clock epoch of every other live event; the sim leaves
            it None and events carry plan time (= sim time).
    """

    def __init__(
        self,
        plan: FaultPlan,
        seed: int = 0,
        *,
        tracer: Optional[Tracer] = None,
        event_clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.plan = plan
        self.seed = seed
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.event_clock = event_clock
        streams = RandomStreams(seed)
        self._rngs: Dict[str, random.Random] = {
            rule.rule_id: streams.get(f"fault.{rule.rule_id}")
            for rule in plan.message_faults
        }
        #: kind -> count of faults actually fired (reports / tests).
        self.injected: Counter = Counter()

    # ------------------------------------------------------------------
    def _emit(self, rule_id: str, kind: str, src: str, dst: str, now_ms: float) -> None:
        self.injected[kind] += 1
        t_ms = self.event_clock() if self.event_clock is not None else now_ms
        self.tracer.emit(FaultInjected(t_ms, rule_id, kind, src, dst))

    # ------------------------------------------------------------------
    # Message-level faults
    # ------------------------------------------------------------------
    def decide(self, src: str, dst: str, op: str, now_ms: float) -> MessageDecision:
        """Verdict for one message ``src -> dst`` of operation ``op``.

        Partitions and manager outages are checked first (deterministic,
        no draws); probabilistic message rules apply afterwards, each
        drawing from its own stream. The first rule that drops the
        message wins; delays and duplications from multiple matching
        rules compose.

        Every matching rule consumes its draws for every message, even
        when another rule already decided to drop it: a rule's stream
        position depends only on the message history it matched, never
        on which other rules exist or in what order — the determinism
        contract that makes schedule shrinking sound (dropping or
        reordering rules replays the survivors bit-identically).
        """
        if self.manager_down(now_ms) and (src == MANAGER_ID or dst == MANAGER_ID):
            outage = next(
                o
                for o in self.plan.outages
                if o.shard is None and o.active(now_ms)
            )
            self._emit(outage.rule_id, "outage", src, dst, now_ms)
            return MessageDecision(
                deliver=False, rule_id=outage.rule_id, kind="outage"
            )
        for partition in self.plan.partitions:
            if partition.blocks(src, dst, now_ms):
                self._emit(partition.rule_id, "partition", src, dst, now_ms)
                return MessageDecision(
                    deliver=False, rule_id=partition.rule_id, kind="partition"
                )
        extra_delay = 0.0
        copies = 1
        hit_rule = ""
        hit_kind = ""
        dropper: Optional[MessageFault] = None
        for rule in self.plan.message_faults:
            if not rule.matches(src, dst, op, now_ms):
                continue
            rng = self._rngs[rule.rule_id]
            if rule.drop_p > 0.0 and rng.random() < rule.drop_p:
                # Self-drop ends this rule's draws for the message (as
                # it always did), but the loop keeps walking so later
                # rules still advance their own streams.
                if dropper is None:
                    dropper = rule
                continue
            if (rule.delay_ms > 0.0 or rule.delay_jitter_ms > 0.0) and (
                rule.delay_p >= 1.0 or rng.random() < rule.delay_p
            ):
                jitter = (
                    rng.uniform(-rule.delay_jitter_ms, rule.delay_jitter_ms)
                    if rule.delay_jitter_ms > 0.0
                    else 0.0
                )
                added = max(0.0, rule.delay_ms + jitter)
                if added > 0.0 and dropper is None:
                    extra_delay += added
                    hit_rule, hit_kind = rule.rule_id, "delay"
                    self._emit(rule.rule_id, "delay", src, dst, now_ms)
            if rule.duplicate_p > 0.0 and rng.random() < rule.duplicate_p:
                if dropper is None:
                    copies += 1
                    hit_rule, hit_kind = rule.rule_id, "duplicate"
                    self._emit(rule.rule_id, "duplicate", src, dst, now_ms)
        if dropper is not None:
            self._emit(dropper.rule_id, "drop", src, dst, now_ms)
            return MessageDecision(
                deliver=False, rule_id=dropper.rule_id, kind="drop"
            )
        if extra_delay == 0.0 and copies == 1:
            return _DELIVER
        return MessageDecision(
            deliver=True,
            extra_delay_ms=extra_delay,
            copies=copies,
            rule_id=hit_rule,
            kind=hit_kind,
        )

    # ------------------------------------------------------------------
    # Node-level fault state
    # ------------------------------------------------------------------
    def manager_down(self, now_ms: float) -> bool:
        """Whole-manager outage in effect? Shard-targeted outages do not
        black-hole messages — they drive the sharded manager's replica
        state instead (see :meth:`shard_down`)."""
        return any(
            o.shard is None and o.active(now_ms) for o in self.plan.outages
        )

    def shard_down(self, shard: int, now_ms: float) -> bool:
        """A shard-targeted outage covering ``shard`` in effect?"""
        return any(
            o.shard == shard and o.active(now_ms) for o in self.plan.outages
        )

    def gray_factor(self, node_id: str, now_ms: float) -> float:
        """The frame-service slowdown in effect for ``node_id`` (1.0 =
        healthy). Heartbeats are never affected — that blindness is the
        point of the gray-node fault."""
        factor = 1.0
        for gray in self.plan.gray_nodes:
            if gray.node_id == node_id and gray.window.contains(now_ms):
                factor = max(factor, gray.slowdown)
        return factor

    def node_actions(self) -> List[NodeAction]:
        """Every scheduled node/manager transition, time-ordered.

        Drivers execute these on their own clocks: the sim schedules
        kernel timers, the live chaos controller sleeps scaled wall
        time. Message-level rules need no actions — they are consulted
        per message via :meth:`decide`.
        """
        actions: List[NodeAction] = []
        for crash in self.plan.crashes:
            actions.append(
                NodeAction(crash.at_ms, "crash", crash.rule_id, crash.node_id)
            )
            if crash.restart_at_ms is not None:
                actions.append(
                    NodeAction(
                        crash.restart_at_ms, "restart", crash.rule_id, crash.node_id
                    )
                )
        for gray in self.plan.gray_nodes:
            actions.append(
                NodeAction(
                    gray.window.start_ms,
                    "gray_start",
                    gray.rule_id,
                    gray.node_id,
                    factor=gray.slowdown,
                )
            )
            if gray.window.end_ms != float("inf"):
                actions.append(
                    NodeAction(
                        gray.window.end_ms, "gray_end", gray.rule_id, gray.node_id
                    )
                )
        for outage in self.plan.outages:
            actions.append(
                NodeAction(
                    outage.window.start_ms,
                    "outage_start",
                    outage.rule_id,
                    shard=outage.shard,
                )
            )
            if outage.window.end_ms != float("inf"):
                actions.append(
                    NodeAction(
                        outage.window.end_ms,
                        "outage_end",
                        outage.rule_id,
                        shard=outage.shard,
                    )
                )
        actions.sort(key=lambda a: (a.t_ms, a.rule_id, a.kind))
        return actions

    def __repr__(self) -> str:
        return (
            f"FaultInjector(seed={self.seed}, rules={len(self.plan)}, "
            f"injected={dict(self.injected)})"
        )
