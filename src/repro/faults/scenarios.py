"""Canonical chaos scenarios and the controllers that drive them.

One seeded :func:`chaos_plan` exercises every fault family the paper's
environment can throw at the protocol — message loss/lag, an asymmetric
partition, a crash *with restart*, a Central Manager outage and a gray
node — and both backends replay it:

- :func:`run_sim_chaos` on the simulator (deterministic: the same seed
  produces the identical trace-event sequence);
- :func:`run_live_chaos` against a loopback :class:`LocalCluster`,
  where a :class:`ChaosController` executes the node-level actions on a
  scaled wall clock and the message-level rules gate real socket I/O.

Both return a :class:`ChaosReport` whose :meth:`ChaosReport.problems`
list is empty exactly when the recovery invariants hold: every client
re-attached to an alive node by the end of the (fault-free) tail
window, covered failovers used the backup list, and no admission state
is stranded (no node believes a user is attached who has moved on, and
vice versa). The chaos-parity test asserts both backends produce a
clean report from the same plan.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    GrayNode,
    ManagerOutage,
    MessageFault,
    NodeCrash,
    Partition,
    Window,
)

__all__ = [
    "ChaosReport",
    "ChaosController",
    "chaos_plan",
    "controlplane_chaos_plan",
    "run_sim_chaos",
    "run_sim_controlplane_chaos",
    "run_live_chaos",
]


# ----------------------------------------------------------------------
# The canonical plan
# ----------------------------------------------------------------------
def chaos_plan(
    edge_ids: Sequence[str], horizon_ms: float = 20_000.0
) -> FaultPlan:
    """The standard all-families chaos schedule over ``horizon_ms``.

    Needs at least two edge ids: the first crashes and restarts, the
    second gets partitioned from every user, and the last runs gray.
    The final 20% of the horizon is fault-free — the settle window the
    recovery invariants are checked against.
    """
    if len(edge_ids) < 2:
        raise ValueError("chaos_plan needs at least two edge ids")
    h = horizon_ms
    return FaultPlan(
        message_faults=(
            MessageFault(
                "frame-loss",
                Window(0.10 * h, 0.55 * h),
                src="user-*",
                ops=("frame",),
                drop_p=0.15,
            ),
            MessageFault(
                "frame-lag",
                Window(0.10 * h, 0.55 * h),
                src="user-*",
                ops=("frame",),
                delay_ms=40.0,
                delay_jitter_ms=20.0,
                delay_p=0.3,
            ),
        ),
        partitions=(
            Partition("edge-cut", "user-*", edge_ids[1], Window(0.15 * h, 0.35 * h)),
        ),
        crashes=(
            NodeCrash("crash", edge_ids[0], 0.40 * h, restart_at_ms=0.70 * h),
        ),
        outages=(ManagerOutage("mgr-down", Window(0.45 * h, 0.65 * h)),),
        gray_nodes=(
            GrayNode("gray", edge_ids[-1], Window(0.55 * h, 0.80 * h), slowdown=6.0),
        ),
    )


# ----------------------------------------------------------------------
# The shared report
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What one chaos run did and whether the system recovered."""

    backend: str
    seed: int
    injected: Dict[str, int] = field(default_factory=dict)
    event_counts: Dict[str, int] = field(default_factory=dict)
    frames_completed: int = 0
    frames_lost: int = 0
    #: Recovery-invariant violations; empty == the run is clean.
    problems: List[str] = field(default_factory=list)
    #: Unretrieved task exceptions collected from the event loop (live
    #: backend only) — non-empty fails the CI chaos smoke.
    task_errors: List[str] = field(default_factory=list)
    #: Streaming-invariant violations from :func:`repro.verify.check_events`
    #: over the run's trace (typed :class:`~repro.verify.Violation`
    #: objects). Kept separate from ``problems`` so :attr:`ok` — and
    #: every metric built on it — keeps its original end-state meaning;
    #: the chaos CLI fails the run on either.
    violations: List[object] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems and not self.task_errors

    def summary_lines(self) -> List[str]:
        lines = [
            f"backend={self.backend} seed={self.seed} "
            f"frames={self.frames_completed} lost={self.frames_lost}",
            "injected: "
            + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
                or "none"
            ),
            "recovery: "
            + ", ".join(
                f"{k}={self.event_counts.get(k, 0)}"
                for k in (
                    "covered_failover",
                    "uncovered_failure",
                    "degraded_fallback",
                    "node_restart",
                    "breaker_transition",
                    "retry_scheduled",
                )
            ),
        ]
        if self.problems:
            lines.append("PROBLEMS: " + "; ".join(self.problems))
        if self.task_errors:
            lines.append("TASK ERRORS: " + "; ".join(self.task_errors))
        if self.violations:
            lines.append(
                "STREAMING VIOLATIONS: "
                + "; ".join(str(v) for v in self.violations)
            )
        if self.ok and not self.violations:
            lines.append("all recovery invariants hold")
        return lines


def _count_events(events: Sequence[object]) -> Dict[str, int]:
    return dict(Counter(getattr(e, "type", "?") for e in events))


# ----------------------------------------------------------------------
# Simulated backend
# ----------------------------------------------------------------------
def run_sim_chaos(
    seed: int = 0,
    *,
    horizon_ms: float = 20_000.0,
    n_clients: int = 2,
    plan: Optional[FaultPlan] = None,
    top_n: int = 3,
    config_overrides: Optional[Dict[str, object]] = None,
) -> Tuple[ChaosReport, List[object]]:
    """Drive the canonical plan through the simulator.

    Returns the report plus the full trace-event list (the parity test
    compares sequences across runs for determinism). ``top_n`` is the
    selection policy's backup breadth — the knob the chaos_matrix sweep
    crosses against fault families (more backups = more covered
    failovers under crash/partition faults, per Fig. 10(b)).
    ``config_overrides`` patches arbitrary :class:`SystemConfig` fields
    on top of the scenario defaults — the schedule search uses it to
    hunt against deliberately weakened configurations (e.g. a huge
    ``failure_detection_ms``) while still replaying bit-identically.
    """
    from repro.core.client import EdgeClient
    from repro.core.config import SystemConfig
    from repro.core.system import EdgeSystem
    from repro.geo.point import GeoPoint
    from repro.net.topology import EndpointSpec
    from repro.nodes.hardware import VOLUNTEER_PROFILES
    from repro.obs.tracer import Tracer

    edge_ids = ["edge-a", "edge-b", "edge-c"]
    plan = plan if plan is not None else chaos_plan(edge_ids, horizon_ms)
    injector = FaultInjector(plan, seed=seed)
    tracer = Tracer()
    config = SystemConfig(
        seed=seed,
        top_n=top_n,
        probing_period_ms=3_000.0,
        # Longer than the plan's worst silent window (the 4 s
        # partition), so only genuinely stranded users expire.
        attachment_lease_ms=6_000.0,
    )
    if config_overrides:
        config = replace(config, **config_overrides)  # type: ignore[arg-type]
    system = EdgeSystem(config, trace=tracer, faults=injector)
    center = GeoPoint(44.97, -93.25)
    for i, edge_id in enumerate(edge_ids):
        system.add_node(
            edge_id,
            VOLUNTEER_PROFILES[i % len(VOLUNTEER_PROFILES)],
            EndpointSpec(center.offset_km(1.0 + i, -1.0 + i)),
        )
    clients: List[EdgeClient] = []
    for i in range(n_clients):
        user_id = f"user-{i + 1:02d}"
        system.add_client_endpoint(
            user_id, EndpointSpec(center.offset_km(-0.5 * i, 0.5 * i))
        )
        client = EdgeClient(system, user_id)
        system.add_client(client)
        clients.append(client)

    system.run_for(horizon_ms)

    report = ChaosReport(backend="sim", seed=seed)
    report.injected = dict(injector.injected)
    events = list(tracer.events())
    report.event_counts = _count_events(events)
    report.frames_completed = sum(c.stats.frames_completed for c in clients)
    report.frames_lost = sum(c.stats.frames_lost for c in clients)
    report.problems = _check_sim_invariants(system)
    report.violations = _streaming_violations(events)
    return report, events


def _streaming_violations(
    events: Sequence[object],
    *,
    time_scale: float = 1.0,
    expect_promotion: Optional[bool] = None,
) -> List[object]:
    """Run the streaming-invariant suite over one run's trace."""
    from repro.verify import check_events

    return list(
        check_events(
            events, time_scale=time_scale, expect_promotion=expect_promotion
        )
    )


def _check_sim_invariants(system: object) -> List[str]:
    """The recovery invariants, on the simulator's final state.

    Re-expressed on :func:`repro.verify.check_attachment_view` — the
    sim just snapshots its node/client objects into the backend-neutral
    view; the checks (and problem strings) live in one place now.
    """
    from repro.verify import AttachmentView, check_attachment_view

    nodes = system.nodes  # type: ignore[attr-defined]
    clients = system.clients  # type: ignore[attr-defined]
    return check_attachment_view(
        AttachmentView(
            client_edges={
                user_id: client.current_edge
                for user_id, client in clients.items()
            },
            node_alive={node_id: node.alive for node_id, node in nodes.items()},
            node_attached={
                node_id: set(node.attached) for node_id, node in nodes.items()
            },
        )
    )


# ----------------------------------------------------------------------
# Control-plane chaos (shard-targeted manager faults)
# ----------------------------------------------------------------------
def controlplane_chaos_plan(
    shard_targets: Sequence[int],
    edge_ids: Sequence[str],
    horizon_ms: float = 20_000.0,
) -> FaultPlan:
    """Shard-targeted control-plane chaos over ``horizon_ms``.

    One staggered primary outage per distinct targeted shard — long
    enough to outlast the failure-detection window, so each exercises
    standby promotion rather than a silent primary resume — layered
    over the usual node-level families (an edge crash with restart, a
    user<->edge partition, frame loss). The final 20% of the horizon is
    fault-free: the settle window the recovery invariants are checked
    against.
    """
    if not shard_targets:
        raise ValueError("controlplane_chaos_plan needs at least one target shard")
    if len(edge_ids) < 2:
        raise ValueError("controlplane_chaos_plan needs at least two edge ids")
    h = horizon_ms
    targets = sorted(set(shard_targets))
    # Outages live inside [0.25h, 0.80h): staggered, one slot per shard,
    # active for 80% of the slot so consecutive outages never overlap.
    span = 0.55 * h
    slot = span / len(targets)
    outages = tuple(
        ManagerOutage(
            f"shard-{shard}-down",
            Window(0.25 * h + i * slot, 0.25 * h + (i + 0.8) * slot),
            shard=shard,
        )
        for i, shard in enumerate(targets)
    )
    return FaultPlan(
        message_faults=(
            MessageFault(
                "cp-frame-loss",
                Window(0.10 * h, 0.60 * h),
                src="user-*",
                ops=("frame",),
                drop_p=0.10,
            ),
        ),
        partitions=(
            Partition(
                "cp-edge-cut", "user-*", edge_ids[1], Window(0.12 * h, 0.28 * h)
            ),
        ),
        crashes=(
            NodeCrash("cp-crash", edge_ids[0], 0.35 * h, restart_at_ms=0.65 * h),
        ),
        outages=outages,
    )


def _controlplane_layout(
    shards: int,
) -> Tuple[object, List[str], List[object], List[int]]:
    """The fixed metro layout the control-plane chaos scenario uses.

    Returns ``(center, edge_ids, points, targets)`` where ``targets``
    are the control-plane shards that actually own at least one edge
    node. Shard ownership is a pure function of node geohash and shard
    map, so the targets are derivable before any system exists — which
    is what lets the schedule search sample shard-targeted outages that
    are guaranteed to hit a populated shard.
    """
    from repro.controlplane.sharding import DEFAULT_SHARD_PRECISION, ShardMap
    from repro.geo.geohash import encode_point
    from repro.geo.point import GeoPoint

    center = GeoPoint(44.97, -93.25)
    # A metro-scale spread (tens of km) so the population can straddle
    # precision-4 shard cells; whether it does is seed-independent.
    node_offsets = [
        (-24.0, -18.0),
        (-10.0, 6.0),
        (0.0, 0.0),
        (12.0, -8.0),
        (24.0, 16.0),
    ]
    edge_ids = [f"edge-{chr(ord('a') + i)}" for i in range(len(node_offsets))]
    points = [center.offset_km(dy, dx) for dy, dx in node_offsets]
    shard_map = ShardMap(count=shards, precision=DEFAULT_SHARD_PRECISION)
    targets = sorted(
        {
            shard_map.owner_of_geohash(
                encode_point(p, precision=DEFAULT_SHARD_PRECISION)
            )
            for p in points
        }
    )
    return center, edge_ids, points, targets


def run_sim_controlplane_chaos(
    seed: int = 0,
    *,
    shards: int = 2,
    replicas: int = 2,
    horizon_ms: float = 20_000.0,
    n_clients: int = 3,
    top_n: int = 3,
    plan: Optional[FaultPlan] = None,
    config_overrides: Optional[Dict[str, object]] = None,
) -> Tuple[ChaosReport, List[object]]:
    """Kill control-plane shard primaries mid-churn and check recovery.

    Spreads edge nodes across a metro region, computes which shards
    actually own them (shard ownership is a pure function of the node
    geohash and the shard map, so the targets are derivable before the
    system exists), then runs a :func:`controlplane_chaos_plan` that
    takes each owning shard's primary down in turn. On top of the
    standard recovery invariants the report checks the control-plane
    ones: every targeted shard promoted a standby within the
    failure-detection budget, and no attached client was stalled beyond
    the degraded-fallback window (every client re-attached and
    streaming by the end of the fault-free tail).
    """
    from repro.core.client import EdgeClient
    from repro.core.config import SystemConfig
    from repro.core.system import EdgeSystem
    from repro.net.topology import EndpointSpec
    from repro.nodes.hardware import VOLUNTEER_PROFILES
    from repro.obs.tracer import Tracer

    center, edge_ids, points, targets = _controlplane_layout(shards)
    plan = (
        plan
        if plan is not None
        else controlplane_chaos_plan(targets, edge_ids, horizon_ms)
    )
    injector = FaultInjector(plan, seed=seed)
    tracer = Tracer()
    config = SystemConfig(
        seed=seed,
        top_n=top_n,
        probing_period_ms=3_000.0,
        attachment_lease_ms=6_000.0,
        control_plane_shards=shards,
        control_plane_replicas=replicas,
    )
    if config_overrides:
        config = replace(config, **config_overrides)  # type: ignore[arg-type]
    system = EdgeSystem(config, trace=tracer, faults=injector)
    for edge_id, point, profile_index in zip(
        edge_ids, points, range(len(edge_ids))
    ):
        system.add_node(
            edge_id,
            VOLUNTEER_PROFILES[profile_index % len(VOLUNTEER_PROFILES)],
            EndpointSpec(point),
        )
    clients: List[EdgeClient] = []
    for i in range(n_clients):
        user_id = f"user-{i + 1:02d}"
        system.add_client_endpoint(
            user_id, EndpointSpec(center.offset_km(-0.5 * i, 0.5 * i))
        )
        client = EdgeClient(system, user_id)
        system.add_client(client)
        clients.append(client)

    system.run_for(horizon_ms)

    report = ChaosReport(backend="sim-controlplane", seed=seed)
    report.injected = dict(injector.injected)
    events = list(tracer.events())
    report.event_counts = _count_events(events)
    report.frames_completed = sum(c.stats.frames_completed for c in clients)
    report.frames_lost = sum(c.stats.frames_lost for c in clients)
    report.problems = _check_sim_invariants(system)
    # Check promotion for the shards this plan actually targeted (for
    # the canonical plan that is every populated shard; a searched plan
    # may target fewer).
    plan_targets = sorted({o.shard for o in plan.outages if o.shard is not None})
    report.problems += _check_controlplane_invariants(system, events, plan_targets)
    if report.frames_completed == 0:
        report.problems.append("no client completed a single frame")
    report.violations = _streaming_violations(
        events, expect_promotion=replicas >= 2 if plan_targets else None
    )
    return report, events


def _check_controlplane_invariants(
    system: object, events: Sequence[object], targets: Sequence[int]
) -> List[str]:
    """Promotion happened, per targeted shard, inside the budget."""
    problems: List[str] = []
    manager = system.manager  # type: ignore[attr-defined]
    budget_ms = getattr(manager, "promotion_delay_ms", None)
    if budget_ms is None:
        return ["manager is not a sharded control plane"]
    replicas = manager.shards[0].replicas if manager.shards else 1
    starts: Dict[int, float] = {}
    promotes: Dict[int, float] = {}
    for event in events:
        kind = getattr(event, "type", "")
        if (
            kind == "fault_injected"
            and getattr(event, "kind", "") == "outage_start"
            and str(getattr(event, "dst", "")).startswith("shard:")
        ):
            shard = int(str(event.dst).split(":", 1)[1])  # type: ignore[attr-defined]
            starts.setdefault(shard, event.t_ms)  # type: ignore[attr-defined]
        elif kind == "manager_promote":
            promotes.setdefault(event.shard, event.t_ms)  # type: ignore[attr-defined]
    for shard in targets:
        t0 = starts.get(shard)
        if t0 is None:
            problems.append(f"no outage_start recorded for shard {shard}")
            continue
        if replicas < 2:
            continue  # nothing to promote to
        t_promote = promotes.get(shard)
        if t_promote is None:
            problems.append(
                f"shard {shard}: primary lost but no standby promoted"
            )
        elif t_promote - t0 > budget_ms + 1.0:
            problems.append(
                f"shard {shard}: promotion took {t_promote - t0:.0f}ms "
                f"(budget {budget_ms:.0f}ms)"
            )
    return problems


# ----------------------------------------------------------------------
# Live backend
# ----------------------------------------------------------------------
class ChaosController:
    """Executes a fault plan against a running :class:`LocalCluster`.

    Plan time maps onto the wall clock at ``plan_ms_per_s`` plan
    milliseconds per wall second (e.g. ``5000`` replays a 20 s plan in
    4 s). The controller wires the injector into every client and edge
    (message-level gating) and runs the node-level actions — kill,
    restart, gray dial, manager outage — as a background task.
    """

    def __init__(
        self,
        cluster: object,
        injector: FaultInjector,
        *,
        plan_ms_per_s: float = 1_000.0,
    ) -> None:
        if plan_ms_per_s <= 0:
            raise ValueError(f"plan_ms_per_s must be positive: {plan_ms_per_s}")
        self.cluster = cluster
        self.injector = injector
        self.plan_ms_per_s = plan_ms_per_s
        self._epoch = 0.0
        self._task: Optional[asyncio.Task] = None

    # -- plan-time clock ------------------------------------------------
    def now_ms(self) -> float:
        return (time.monotonic() - self._epoch) * self.plan_ms_per_s

    def _wire(self, actor: object) -> None:
        actor.faults = self.injector  # type: ignore[attr-defined]
        actor.fault_clock = self.now_ms  # type: ignore[attr-defined]
        if hasattr(actor, "fault_scale"):
            # wall-ms slept per injected plan-ms of delay
            actor.fault_scale = 1_000.0 / self.plan_ms_per_s  # type: ignore[attr-defined]

    def start(self) -> None:
        """Stamp the epoch, wire every actor, launch the action script."""
        self._epoch = time.monotonic()
        self.injector.event_clock = self.cluster.tracer.now  # type: ignore[attr-defined]
        for client in self.cluster.clients:  # type: ignore[attr-defined]
            self._wire(client)
        for edge in self.cluster.edges:  # type: ignore[attr-defined]
            self._wire(edge)
        self._task = asyncio.ensure_future(self._run_actions())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def wait(self) -> None:
        """Block until every scheduled node action has run."""
        if self._task is not None:
            await self._task
            self._task = None

    # -- node-level actions --------------------------------------------
    async def _run_actions(self) -> None:
        from repro.obs.events import FaultInjected

        tracer = self.cluster.tracer  # type: ignore[attr-defined]
        for action in self.injector.node_actions():
            wall_deadline = self._epoch + action.t_ms / self.plan_ms_per_s
            delay = wall_deadline - time.monotonic()
            if delay > 0:
                await asyncio.sleep(delay)
            kind = action.kind
            tracer.emit(
                FaultInjected(
                    tracer.now(), action.rule_id, kind, dst=action.node_id
                )
            )
            self.injector.injected[kind] += 1
            if kind == "crash":
                await self.cluster.kill_edge(action.node_id)  # type: ignore[attr-defined]
            elif kind == "restart":
                edge = await self.cluster.restart_edge(action.node_id)  # type: ignore[attr-defined]
                self._wire(edge)
            elif kind == "gray_start":
                self.cluster.edge_by_id(action.node_id).set_slowdown(  # type: ignore[attr-defined]
                    action.factor
                )
            elif kind == "gray_end":
                self.cluster.edge_by_id(action.node_id).set_slowdown(1.0)  # type: ignore[attr-defined]
            elif kind == "outage_start":
                await self.cluster.stop_manager()  # type: ignore[attr-defined]
            elif kind == "outage_end":
                await self.cluster.restart_manager()  # type: ignore[attr-defined]


async def run_live_chaos(
    seed: int = 0,
    *,
    horizon_ms: float = 20_000.0,
    plan_ms_per_s: float = 5_000.0,
    n_clients: int = 2,
    time_scale: float = 0.05,
    plan: Optional[FaultPlan] = None,
) -> Tuple[ChaosReport, List[object]]:
    """Drive the canonical plan against a loopback cluster.

    Every unretrieved task exception and loop error is captured into
    ``report.task_errors`` — the hardened runtime must absorb chaos
    without leaking exceptions into the event loop. A custom ``plan``
    (plan-time milliseconds, like the sim's) replaces the canonical
    schedule; actions scheduled past ``horizon_ms`` still run — the
    controller drains the full action script before teardown.
    """
    from repro.nodes.hardware import VOLUNTEER_PROFILES
    from repro.obs.tracer import Tracer
    from repro.runtime.launcher import LocalCluster
    from repro.runtime.protocol import RetryPolicy

    task_errors: List[str] = []
    loop = asyncio.get_running_loop()
    previous_handler = loop.get_exception_handler()

    def handler(loop: asyncio.AbstractEventLoop, context: dict) -> None:
        task_errors.append(str(context.get("exception") or context.get("message")))

    loop.set_exception_handler(handler)

    tracer = Tracer()
    cluster = LocalCluster(
        VOLUNTEER_PROFILES[:3],
        n_clients=n_clients,
        seed=seed,
        time_scale=time_scale,
        heartbeat_period_s=0.1,
        tracer=tracer,
        monitor_period_s=0.25,
        attachment_lease_s=0.8,
    )
    report = ChaosReport(backend="live", seed=seed)
    events: List[object] = []
    try:
        await cluster.start()
        for client in cluster.clients:
            # Tight budgets: chaos runs fail over in milliseconds, not
            # after stacked 5 s timeouts.
            client.request_timeout = 0.5
            client.retry_policy = RetryPolicy(
                max_attempts=3, budget_s=0.6, base_delay_s=0.02, max_delay_s=0.1
            )
            client.breaker_reset_s = 0.4
        edge_ids = [e.node_id for e in cluster.edges]
        plan = plan if plan is not None else chaos_plan(edge_ids, horizon_ms)
        injector = FaultInjector(plan, seed=seed, tracer=tracer)
        controller = ChaosController(
            cluster, injector, plan_ms_per_s=plan_ms_per_s
        )
        controller.start()

        async def client_loop(client: object) -> Tuple[int, int]:
            completed = lost = 0
            try:
                await client.select_and_join()  # type: ignore[attr-defined]
            except RuntimeError:
                pass
            # Stream 25% past the (fault-free-tailed) plan horizon:
            # the extra beats keep legitimate attachment leases fresh
            # while entries stranded by chaos idle out and expire.
            while controller.now_ms() < horizon_ms * 1.25:
                try:
                    latency = await client.offload_frame()  # type: ignore[attr-defined]
                    if latency is None:
                        lost += 1
                    else:
                        completed += 1
                except RuntimeError:
                    # Unattached (or every candidate refused): keep
                    # retrying the selection round until one lands.
                    await asyncio.sleep(0.05)
                    try:
                        await client.select_and_join()  # type: ignore[attr-defined]
                    except RuntimeError:
                        pass
                await asyncio.sleep(0.03)
            return completed, lost

        results = await asyncio.gather(
            *(client_loop(c) for c in cluster.clients)
        )
        await controller.wait()
        # Re-attach anyone chaos left dangling — the live equivalent of
        # the sim's fault-free settle window.
        for client in cluster.clients:
            if client.current_edge is None:
                try:
                    await client.select_and_join()
                except RuntimeError:
                    pass
        report.frames_completed = sum(r[0] for r in results)
        report.frames_lost = sum(r[1] for r in results)
        report.injected = dict(injector.injected)
        events = list(tracer.events())
        report.event_counts = _count_events(events)
        report.problems = _check_live_invariants(cluster)
        # Live traces are wall-clock: plan-time budgets shrink by the
        # replay speed-up before the streaming suite sees them.
        report.violations = _streaming_violations(
            events, time_scale=1_000.0 / plan_ms_per_s
        )
    finally:
        try:
            await cluster.stop()
        finally:
            loop.set_exception_handler(previous_handler)
    # Give cancelled tasks a beat to finalize before draining errors.
    await asyncio.sleep(0)
    report.task_errors = task_errors
    return report, events


def _check_live_invariants(cluster: object) -> List[str]:
    """The same recovery invariants, on the cluster's final state."""
    from repro.verify import AttachmentView, check_attachment_view

    edges = {e.node_id: e for e in cluster.edges}  # type: ignore[attr-defined]
    clients = {c.user_id: c for c in cluster.clients}  # type: ignore[attr-defined]
    return check_attachment_view(
        AttachmentView(
            client_edges={
                user_id: client.current_edge
                for user_id, client in clients.items()
            },
            node_alive={
                node_id: not edge._dead for node_id, edge in edges.items()
            },
            node_attached={
                node_id: set(edge.attached) for node_id, edge in edges.items()
            },
        )
    )
