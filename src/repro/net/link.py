"""Stateful client-to-edge connections.

The paper's failure monitor relies on *proactively established*
connections to backup edge nodes so a failover switch costs (almost)
nothing, whereas a reactive "re-connect" approach pays edge re-discovery
plus connection establishment — the large latency gap shown in Fig. 4 and
Fig. 10(a). :class:`Link` models that cost structure:

- ``ESTABLISHING`` → ``UP`` after ``establish_ms`` (≈ TCP + app handshake,
  i.e. a couple of RTTs).
- ``UP`` links deliver requests at the current network delay.
- ``DOWN`` links (node left / crashed) fail requests immediately.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class LinkState(enum.Enum):
    ESTABLISHING = "establishing"
    UP = "up"
    DOWN = "down"


#: Number of round trips needed to establish a fresh connection:
#: TCP 3-way handshake (1 RTT to usable) + TLS-less app hello (1 RTT) +
#: margin. Used to price reactive re-connection.
CONNECTION_SETUP_RTTS = 2.5


@dataclass
class Link:
    """A client's connection to one edge node.

    Attributes:
        client_id / edge_id: endpoint ids.
        rtt_ms: last known base RTT (refreshed by probes).
        state: current :class:`LinkState`.
        established_at: sim time (ms) the link reached ``UP``.
    """

    client_id: str
    edge_id: str
    rtt_ms: float = 0.0
    state: LinkState = LinkState.ESTABLISHING
    established_at: float = field(default=-1.0)

    def establish_ms(self) -> float:
        """Time to bring this link UP from scratch."""
        return CONNECTION_SETUP_RTTS * self.rtt_ms

    def mark_up(self, now: float) -> None:
        self.state = LinkState.UP
        self.established_at = now

    def mark_down(self) -> None:
        self.state = LinkState.DOWN

    @property
    def usable(self) -> bool:
        return self.state is LinkState.UP

    def __repr__(self) -> str:
        return (
            f"Link({self.client_id}->{self.edge_id}, {self.state.value}, "
            f"rtt={self.rtt_ms:.1f}ms)"
        )
