"""The network topology: endpoints + RTT model + bandwidth model.

:class:`NetworkTopology` is the single object the rest of the system asks
network questions of:

- ``rtt_ms(a, b)`` — one jittered RTT sample (what a probe observes).
- ``expected_rtt_ms(a, b)`` — the mean (what an oracle/optimal solver
  uses).
- ``transfer_ms(a, b, size)`` — request payload transfer delay capped by
  the sender's uplink.
- ``one_way_ms(a, b)`` — half an RTT sample, for message deliveries.

Endpoints are registered once with their position, tier, ISP tag and
bandwidth caps; everything else derives from the installed models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.geo.point import GeoPoint
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import (
    DistanceRttModel,
    EndpointInfo,
    NetworkTier,
    RttModel,
)


@dataclass
class NetworkEndpoint:
    """A registered network participant (user device or edge node)."""

    endpoint_id: str
    point: GeoPoint
    tier: NetworkTier = NetworkTier.HOME_WIFI
    isp: Optional[str] = None
    uplink_mbps: Optional[float] = None
    downlink_mbps: Optional[float] = None
    access_extra_ms: float = 0.0

    def info(self) -> EndpointInfo:
        return EndpointInfo(
            endpoint_id=self.endpoint_id,
            point=self.point,
            tier=self.tier,
            isp=self.isp,
            access_extra_ms=self.access_extra_ms,
        )


@dataclass(frozen=True)
class EndpointSpec:
    """Declarative network identity for a node or user endpoint.

    The one object that carries everything the topology needs to know
    about a participant's attachment — position, tier, ISP affiliation,
    bandwidth caps and last-mile overhead. APIs accept a spec instead of
    re-declaring these seven facts as individual keyword arguments
    (see :meth:`~repro.core.system.EdgeSystem.add_node` and
    :class:`~repro.api.ScenarioBuilder`).
    """

    point: GeoPoint
    tier: NetworkTier = NetworkTier.HOME_WIFI
    isp: Optional[str] = None
    uplink_mbps: Optional[float] = None
    downlink_mbps: Optional[float] = None
    access_extra_ms: float = 0.0

    def endpoint(self, endpoint_id: str) -> NetworkEndpoint:
        """Materialize the spec as a registrable endpoint."""
        return NetworkEndpoint(
            endpoint_id,
            self.point,
            tier=self.tier,
            isp=self.isp,
            uplink_mbps=self.uplink_mbps,
            downlink_mbps=self.downlink_mbps,
            access_extra_ms=self.access_extra_ms,
        )

    def moved_to(self, point: GeoPoint) -> "EndpointSpec":
        """A copy of this spec at a different position (placement loops)."""
        return EndpointSpec(
            point,
            tier=self.tier,
            isp=self.isp,
            uplink_mbps=self.uplink_mbps,
            downlink_mbps=self.downlink_mbps,
            access_extra_ms=self.access_extra_ms,
        )


class NetworkTopology:
    """Registry of endpoints plus the latency/bandwidth models.

    Args:
        rtt_model: defaults to a calibrated :class:`DistanceRttModel`.
        bandwidth_model: defaults to home-broadband caps.
        rng: random source for jitter; pass a seeded stream.
    """

    def __init__(
        self,
        rtt_model: Optional[RttModel] = None,
        bandwidth_model: Optional[BandwidthModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._rtt_model: RttModel = rtt_model or DistanceRttModel()
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.rng = rng or random.Random(0)
        self._endpoints: Dict[str, NetworkEndpoint] = {}
        # --- RTT memoization (the per-probe fast path) ---------------
        # Endpoint identity is immutable once registered (replacement is
        # an explicit remove+add), so both the EndpointInfo view and —
        # for models declaring `cacheable_expected` — the expected RTT
        # of a pair can be memoized until one of the endpoints churns.
        self._info_cache: Dict[str, EndpointInfo] = {}
        self._expected_cache: Dict[Tuple[str, str], float] = {}
        #: endpoint id -> the cached pair keys that touch it, so churn
        #: invalidates exactly the affected pairs instead of scanning
        #: the whole cache.
        self._pairs_of: Dict[str, Set[Tuple[str, str]]] = {}

    # ------------------------------------------------------------------
    # Model wiring
    # ------------------------------------------------------------------
    @property
    def rtt_model(self) -> RttModel:
        """The installed RTT model; assigning a new one drops the cache."""
        return self._rtt_model

    @rtt_model.setter
    def rtt_model(self, model: RttModel) -> None:
        self._rtt_model = model
        self.invalidate_rtt_cache()

    def invalidate_rtt_cache(self, endpoint_id: Optional[str] = None) -> None:
        """Drop memoized RTT state — everything, or one endpoint's pairs.

        Called automatically on endpoint add/remove and on RTT-model
        replacement; call it manually after mutating an installed model
        in place (e.g. retuning ``DistanceRttModel`` parameters mid-run).
        """
        if endpoint_id is None:
            self._info_cache.clear()
            self._expected_cache.clear()
            self._pairs_of.clear()
            return
        self._info_cache.pop(endpoint_id, None)
        for key in self._pairs_of.pop(endpoint_id, ()):
            self._expected_cache.pop(key, None)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add_endpoint(self, endpoint: NetworkEndpoint, *, replace: bool = False) -> None:
        """Register an endpoint under its unique id.

        Args:
            endpoint: the endpoint to register.
            replace: must be True to overwrite an existing registration
                (e.g. a node id being reused after a failure). Explicit
                replacement — rather than a silent overwrite — exists so
                stale per-endpoint state (memoized RTTs, spatial-index
                entries fed from heartbeats) can never survive an
                endpoint changing identity underneath the system.

        Raises:
            ValueError: if the id is already registered and ``replace``
                is False.
        """
        endpoint_id = endpoint.endpoint_id
        if endpoint_id in self._endpoints:
            if not replace:
                raise ValueError(
                    f"endpoint id already registered: {endpoint_id!r} "
                    "(pass replace=True to re-register explicitly)"
                )
            self.invalidate_rtt_cache(endpoint_id)
        self._endpoints[endpoint_id] = endpoint

    def remove_endpoint(self, endpoint_id: str) -> None:
        self._endpoints.pop(endpoint_id, None)
        self.invalidate_rtt_cache(endpoint_id)

    def endpoint(self, endpoint_id: str) -> NetworkEndpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise KeyError(f"unknown endpoint: {endpoint_id!r}") from None

    def has_endpoint(self, endpoint_id: str) -> bool:
        return endpoint_id in self._endpoints

    def endpoint_ids(self) -> List[str]:
        return list(self._endpoints)

    def endpoints(self) -> Iterable[NetworkEndpoint]:
        return self._endpoints.values()

    # ------------------------------------------------------------------
    # Latency / bandwidth queries
    # ------------------------------------------------------------------
    def _info(self, endpoint_id: str) -> EndpointInfo:
        """Memoized :meth:`NetworkEndpoint.info` view of an endpoint."""
        info = self._info_cache.get(endpoint_id)
        if info is None:
            info = self.endpoint(endpoint_id).info()
            self._info_cache[endpoint_id] = info
        return info

    def rtt_ms(self, a: str, b: str) -> float:
        """One jittered RTT sample between registered endpoints.

        For models whose samples decompose into jitter around the
        expected value (all built-ins), this is a dict hit on the
        memoized expected RTT plus a fresh jitter draw — bit-identical
        to the unmemoized sample, since the jitter consumes the RNG the
        same way either route.
        """
        model = self._rtt_model
        if getattr(model, "jitter_decomposable", False):
            return model.jitter.apply(self.expected_rtt_ms(a, b), self.rng)
        return model.sample_rtt_ms(self._info(a), self._info(b), self.rng)

    def expected_rtt_ms(self, a: str, b: str) -> float:
        """Mean RTT between registered endpoints (no jitter)."""
        model = self._rtt_model
        if not getattr(model, "cacheable_expected", False):
            return model.expected_rtt_ms(self._info(a), self._info(b))
        key = (a, b)
        cached = self._expected_cache.get(key)
        if cached is not None:
            return cached
        value = model.expected_rtt_ms(self._info(a), self._info(b))
        self._expected_cache[key] = value
        self._pairs_of.setdefault(a, set()).add(key)
        self._pairs_of.setdefault(b, set()).add(key)
        return value

    def one_way_ms(self, a: str, b: str) -> float:
        """Half of an RTT sample: a single message delivery delay."""
        return self.rtt_ms(a, b) / 2.0

    def transfer_ms(self, src: str, dst: str, size_bytes: float) -> float:
        """Sampled payload transfer delay from ``src`` to ``dst``."""
        source = self.endpoint(src)
        destination = self.endpoint(dst)
        return self.bandwidth_model.sample_transfer_ms(
            size_bytes,
            self.rng,
            uplink_mbps=source.uplink_mbps,
            downlink_mbps=destination.downlink_mbps,
        )

    def expected_transfer_ms(self, src: str, dst: str, size_bytes: float) -> float:
        """Mean payload transfer delay (no contention noise)."""
        source = self.endpoint(src)
        destination = self.endpoint(dst)
        return self.bandwidth_model.expected_transfer_ms(
            size_bytes,
            uplink_mbps=source.uplink_mbps,
            downlink_mbps=destination.downlink_mbps,
        )

    def distance_km(self, a: str, b: str) -> float:
        """Great-circle distance between two registered endpoints."""
        return self.endpoint(a).point.distance_km(self.endpoint(b).point)

    def __len__(self) -> int:
        return len(self._endpoints)

    def __repr__(self) -> str:
        return f"NetworkTopology(endpoints={len(self._endpoints)})"
