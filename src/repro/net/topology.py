"""The network topology: endpoints + RTT model + bandwidth model.

:class:`NetworkTopology` is the single object the rest of the system asks
network questions of:

- ``rtt_ms(a, b)`` — one jittered RTT sample (what a probe observes).
- ``expected_rtt_ms(a, b)`` — the mean (what an oracle/optimal solver
  uses).
- ``transfer_ms(a, b, size)`` — request payload transfer delay capped by
  the sender's uplink.
- ``one_way_ms(a, b)`` — half an RTT sample, for message deliveries.

Endpoints are registered once with their position, tier, ISP tag and
bandwidth caps; everything else derives from the installed models.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.geo.point import GeoPoint
from repro.net.bandwidth import BandwidthModel
from repro.net.latency import (
    DistanceRttModel,
    EndpointInfo,
    NetworkTier,
    RttModel,
)


@dataclass
class NetworkEndpoint:
    """A registered network participant (user device or edge node)."""

    endpoint_id: str
    point: GeoPoint
    tier: NetworkTier = NetworkTier.HOME_WIFI
    isp: Optional[str] = None
    uplink_mbps: Optional[float] = None
    downlink_mbps: Optional[float] = None
    access_extra_ms: float = 0.0

    def info(self) -> EndpointInfo:
        return EndpointInfo(
            endpoint_id=self.endpoint_id,
            point=self.point,
            tier=self.tier,
            isp=self.isp,
            access_extra_ms=self.access_extra_ms,
        )


class NetworkTopology:
    """Registry of endpoints plus the latency/bandwidth models.

    Args:
        rtt_model: defaults to a calibrated :class:`DistanceRttModel`.
        bandwidth_model: defaults to home-broadband caps.
        rng: random source for jitter; pass a seeded stream.
    """

    def __init__(
        self,
        rtt_model: Optional[RttModel] = None,
        bandwidth_model: Optional[BandwidthModel] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.rtt_model: RttModel = rtt_model or DistanceRttModel()
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.rng = rng or random.Random(0)
        self._endpoints: Dict[str, NetworkEndpoint] = {}

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def add_endpoint(self, endpoint: NetworkEndpoint) -> None:
        """Register (or replace) an endpoint."""
        self._endpoints[endpoint.endpoint_id] = endpoint

    def remove_endpoint(self, endpoint_id: str) -> None:
        self._endpoints.pop(endpoint_id, None)

    def endpoint(self, endpoint_id: str) -> NetworkEndpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise KeyError(f"unknown endpoint: {endpoint_id!r}") from None

    def has_endpoint(self, endpoint_id: str) -> bool:
        return endpoint_id in self._endpoints

    def endpoint_ids(self) -> List[str]:
        return list(self._endpoints)

    def endpoints(self) -> Iterable[NetworkEndpoint]:
        return self._endpoints.values()

    # ------------------------------------------------------------------
    # Latency / bandwidth queries
    # ------------------------------------------------------------------
    def rtt_ms(self, a: str, b: str) -> float:
        """One jittered RTT sample between registered endpoints."""
        return self.rtt_model.sample_rtt_ms(
            self.endpoint(a).info(), self.endpoint(b).info(), self.rng
        )

    def expected_rtt_ms(self, a: str, b: str) -> float:
        """Mean RTT between registered endpoints (no jitter)."""
        return self.rtt_model.expected_rtt_ms(
            self.endpoint(a).info(), self.endpoint(b).info()
        )

    def one_way_ms(self, a: str, b: str) -> float:
        """Half of an RTT sample: a single message delivery delay."""
        return self.rtt_ms(a, b) / 2.0

    def transfer_ms(self, src: str, dst: str, size_bytes: float) -> float:
        """Sampled payload transfer delay from ``src`` to ``dst``."""
        source = self.endpoint(src)
        destination = self.endpoint(dst)
        return self.bandwidth_model.sample_transfer_ms(
            size_bytes,
            self.rng,
            uplink_mbps=source.uplink_mbps,
            downlink_mbps=destination.downlink_mbps,
        )

    def expected_transfer_ms(self, src: str, dst: str, size_bytes: float) -> float:
        """Mean payload transfer delay (no contention noise)."""
        source = self.endpoint(src)
        destination = self.endpoint(dst)
        return self.bandwidth_model.expected_transfer_ms(
            size_bytes,
            uplink_mbps=source.uplink_mbps,
            downlink_mbps=destination.downlink_mbps,
        )

    def distance_km(self, a: str, b: str) -> float:
        """Great-circle distance between two registered endpoints."""
        return self.endpoint(a).point.distance_km(self.endpoint(b).point)

    def __len__(self) -> int:
        return len(self._endpoints)

    def __repr__(self) -> str:
        return f"NetworkTopology(endpoints={len(self._endpoints)})"
