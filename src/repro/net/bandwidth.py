"""Data transfer delay (``D_trans``) model.

The paper observes that for AR cognitive assistance "user outbound
bandwidth usually becomes the data transfer bottleneck, which is
determined by network access method/ISP configurations/traffic plans" and
that "edge selection has limited effect on first-hop data transfer
performance" (§IV-C1). We model exactly that: the transfer delay of a
request is its payload divided by the *minimum* of the sender's uplink
and the receiver's downlink, i.e. the first hop dominates and the chosen
edge barely moves it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


def transfer_ms(size_bytes: float, bottleneck_mbps: float) -> float:
    """Serialization delay of ``size_bytes`` through ``bottleneck_mbps``.

    Raises:
        ValueError: on non-positive bandwidth or negative size.
    """
    if bottleneck_mbps <= 0:
        raise ValueError(f"bandwidth must be positive: {bottleneck_mbps}")
    if size_bytes < 0:
        raise ValueError(f"size must be >= 0: {size_bytes}")
    bits = size_bytes * 8.0
    return bits / (bottleneck_mbps * 1e6) * 1e3


@dataclass
class BandwidthModel:
    """Endpoint-capped transfer delays with optional utilization noise.

    Args:
        default_uplink_mbps / default_downlink_mbps: caps applied when an
            endpoint does not declare its own.
        contention_sigma: lognormal-ish noise factor on effective
            bandwidth, modelling cross-traffic on the home link; 0
            disables noise.
    """

    default_uplink_mbps: float = 20.0
    default_downlink_mbps: float = 200.0
    contention_sigma: float = 0.10

    def __post_init__(self) -> None:
        if self.default_uplink_mbps <= 0 or self.default_downlink_mbps <= 0:
            raise ValueError("default bandwidths must be positive")
        if self.contention_sigma < 0:
            raise ValueError("contention_sigma must be >= 0")

    def bottleneck_mbps(
        self,
        uplink_mbps: Optional[float],
        downlink_mbps: Optional[float],
    ) -> float:
        """Effective path bandwidth given sender uplink / receiver downlink."""
        up = uplink_mbps if uplink_mbps is not None else self.default_uplink_mbps
        down = (
            downlink_mbps if downlink_mbps is not None else self.default_downlink_mbps
        )
        return min(up, down)

    def expected_transfer_ms(
        self,
        size_bytes: float,
        uplink_mbps: Optional[float] = None,
        downlink_mbps: Optional[float] = None,
    ) -> float:
        """Mean transfer delay (no contention noise)."""
        return transfer_ms(size_bytes, self.bottleneck_mbps(uplink_mbps, downlink_mbps))

    def sample_transfer_ms(
        self,
        size_bytes: float,
        rng: random.Random,
        uplink_mbps: Optional[float] = None,
        downlink_mbps: Optional[float] = None,
    ) -> float:
        """One transfer-delay sample with cross-traffic noise."""
        base = self.expected_transfer_ms(size_bytes, uplink_mbps, downlink_mbps)
        if self.contention_sigma <= 0:
            return base
        # Effective bandwidth dips under cross-traffic -> delay inflates.
        factor = rng.lognormvariate(0.0, self.contention_sigma)
        return base * max(factor, 0.5)
