"""RTT propagation delay (``D_prop``) models.

Fig. 1 of the paper measures RTT from 15 home-WiFi participants to
(1) five volunteer edge nodes in the same metro, (2) an AWS Local Zone,
and (3) the closest AWS region, and finds volunteers < Local Zone <
cloud. Physical distance explains little of this at metro scale — the
dominant terms are routing-hop count and ISP interconnect overhead. The
models here therefore combine:

``rtt = floor + distance_term + tier_inflation(src) + tier_inflation(dst) + jitter``

with per-tier inflation constants calibrated so sampled distributions
reproduce the ranges in Fig. 1 and Table III (volunteer ≈ 8-20 ms,
Local Zone ≈ 15-30 ms, cloud ≈ 60-80 ms from a metro home connection).
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, Tuple

from repro.geo.point import GeoPoint


class NetworkTier(enum.Enum):
    """Coarse class of an endpoint's network attachment.

    The tier determines the fixed routing/interconnect overhead an
    endpoint contributes to any path that touches it.
    """

    HOME_WIFI = "home_wifi"  # residential last mile (users, volunteers)
    METRO_FIBER = "metro_fiber"  # well-connected volunteer (office/dorm)
    LOCAL_ZONE = "local_zone"  # AWS Local Zone style metro DC
    CLOUD = "cloud"  # regional cloud DC, hundreds of km away
    LAN = "lan"  # same-LAN affiliation (dedicated channel)


#: One-way routing inflation (ms) contributed by each endpoint tier.
#: Calibrated to Fig. 1: two HOME_WIFI endpoints in one metro see
#: ~2*3.5 + floor + jitter ≈ 8-16 ms RTT; home->LOCAL_ZONE lands ~15-30;
#: home->CLOUD is dominated by the cloud's distance + backbone overhead.
TIER_INFLATION_MS: Dict[NetworkTier, float] = {
    NetworkTier.HOME_WIFI: 3.5,
    NetworkTier.METRO_FIBER: 1.5,
    # The Local Zone pays an ISP-interconnect detour from residential
    # networks: "its deliverable latency is much higher than the claimed
    # single-digit millisecond level to end users due to the networking
    # overhead within the local ISP network" (§II-A).
    NetworkTier.LOCAL_ZONE: 11.0,
    NetworkTier.CLOUD: 30.0,
    NetworkTier.LAN: 0.2,
}


class JitterModel:
    """Multiplicative-lognormal + additive spike jitter.

    Real home networks show a right-skewed RTT distribution with a long
    tail (WiFi retransmits, bufferbloat). We model a lognormal factor
    around 1.0 plus rare additive spikes.

    Args:
        sigma: lognormal shape; 0 disables the multiplicative part.
        spike_probability: chance a sample carries an additive spike.
        spike_ms: mean of the (exponential) spike magnitude.
    """

    def __init__(
        self,
        sigma: float = 0.15,
        spike_probability: float = 0.01,
        spike_ms: float = 30.0,
    ) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0: {sigma}")
        if not 0.0 <= spike_probability <= 1.0:
            raise ValueError(f"spike_probability must be in [0,1]: {spike_probability}")
        self.sigma = sigma
        self.spike_probability = spike_probability
        self.spike_ms = spike_ms
        # mean of lognormal(mu=0, sigma) is exp(sigma^2/2); divide it out
        # so jitter is mean-preserving.
        self._mean_correction = math.exp(-(sigma**2) / 2.0)

    def apply(self, base_ms: float, rng: random.Random) -> float:
        """Return a jittered sample around ``base_ms`` (mean-preserving)."""
        value = base_ms
        if self.sigma > 0:
            value *= rng.lognormvariate(0.0, self.sigma) * self._mean_correction
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            value += rng.expovariate(1.0 / self.spike_ms)
        return value


class RttModel(Protocol):
    """Anything that can produce RTT samples between two endpoints.

    Two optional class attributes let :class:`~repro.net.topology.
    NetworkTopology` put a model on its memoized fast path (both default
    to False for models that do not declare them):

    - ``jitter_decomposable``: the model guarantees
      ``sample_rtt_ms(s, d, rng) == jitter.apply(expected_rtt_ms(s, d), rng)``
      (same RNG consumption), so the topology may sample from a cached
      expected value. All built-in models satisfy this.
    - ``cacheable_expected``: ``expected_rtt_ms`` is a pure function of
      the two endpoint identities for the model's lifetime, so the
      topology may memoize it per endpoint pair.
      :class:`MatrixRttModel` does *not* declare this — ``set_rtt`` can
      change pairs after first use.
    """

    def expected_rtt_ms(self, src: "EndpointInfo", dst: "EndpointInfo") -> float:
        """Mean RTT, used by optimal solvers and reports."""
        ...

    def sample_rtt_ms(
        self, src: "EndpointInfo", dst: "EndpointInfo", rng: random.Random
    ) -> float:
        """One jittered RTT sample, used by live probes and requests."""
        ...


@dataclass(frozen=True)
class EndpointInfo:
    """The network-relevant identity of an endpoint.

    Kept separate from higher-level node/user objects so latency models
    depend only on network facts.
    """

    endpoint_id: str
    point: GeoPoint
    tier: NetworkTier = NetworkTier.HOME_WIFI
    #: Optional ISP/affiliation tag: endpoints sharing a tag get the
    #: intra-ISP discount (fewer interconnect hops).
    isp: Optional[str] = None
    #: Per-endpoint access-link overhead (ms, one-way): heterogeneous
    #: last-mile quality (DSL vs cable vs fiber, bad WiFi placement).
    #: This is the dominant source of the RTT heterogeneity Fig. 1
    #: measures across "volunteer-based edge nodes ... with
    #: heterogeneous network access".
    access_extra_ms: float = 0.0


class DistanceRttModel:
    """RTT from distance, endpoint tiers, ISP affiliation and jitter.

    ``rtt = floor + 2 * distance_km * ms_per_km * path_stretch
            + inflation(src) + inflation(dst) [ - isp_discount ] + jitter``

    Args:
        floor_ms: irreducible stack/serialization floor.
        ms_per_km: one-way propagation per km (speed of light in fiber
            ≈ 0.005 ms/km; effective value is higher due to non-direct
            paths, folded into ``path_stretch``).
        path_stretch: ratio of routed path length to great-circle.
        same_isp_discount_ms: subtracted when both endpoints share an ISP
            tag (models staying inside one local ISP network, the paper's
            "network affiliation" hint).
        jitter: the jitter model, or None for deterministic RTTs.
    """

    jitter_decomposable = True
    cacheable_expected = True

    def __init__(
        self,
        floor_ms: float = 1.0,
        ms_per_km: float = 0.0075,
        path_stretch: float = 1.6,
        same_isp_discount_ms: float = 2.0,
        tier_inflation_ms: Optional[Dict[NetworkTier, float]] = None,
        jitter: Optional[JitterModel] = None,
    ) -> None:
        if floor_ms < 0 or ms_per_km < 0 or path_stretch < 1.0:
            raise ValueError("invalid DistanceRttModel parameters")
        self.floor_ms = floor_ms
        self.ms_per_km = ms_per_km
        self.path_stretch = path_stretch
        self.same_isp_discount_ms = same_isp_discount_ms
        self.tier_inflation_ms = dict(tier_inflation_ms or TIER_INFLATION_MS)
        self.jitter = jitter if jitter is not None else JitterModel()

    def expected_rtt_ms(self, src: EndpointInfo, dst: EndpointInfo) -> float:
        distance = src.point.distance_km(dst.point)
        rtt = (
            self.floor_ms
            + 2.0 * distance * self.ms_per_km * self.path_stretch
            + self.tier_inflation_ms[src.tier]
            + self.tier_inflation_ms[dst.tier]
            + 2.0 * (src.access_extra_ms + dst.access_extra_ms)
        )
        if src.isp is not None and src.isp == dst.isp:
            rtt = max(self.floor_ms, rtt - self.same_isp_discount_ms)
        return rtt

    def sample_rtt_ms(
        self, src: EndpointInfo, dst: EndpointInfo, rng: random.Random
    ) -> float:
        return self.jitter.apply(self.expected_rtt_ms(src, dst), rng)


class MatrixRttModel:
    """Explicit pairwise base RTTs with jitter on top.

    The paper's emulation "configure[s] the pairwise networking
    performance (latency/bandwidth) using tc with real-world measurement
    data" — this model is that configuration in software. Pairs are
    symmetric unless both directions are set explicitly. A ``default_ms``
    covers unset pairs; self-pairs return ~0.
    """

    jitter_decomposable = True
    # NOT cacheable_expected: set_rtt() may reconfigure pairs anytime.

    def __init__(
        self,
        default_ms: float = 30.0,
        jitter: Optional[JitterModel] = None,
    ) -> None:
        self.default_ms = default_ms
        self.jitter = jitter if jitter is not None else JitterModel(sigma=0.08)
        self._matrix: Dict[Tuple[str, str], float] = {}

    def set_rtt(self, a: str, b: str, rtt_ms: float, symmetric: bool = True) -> None:
        """Set the base RTT between endpoint ids ``a`` and ``b``."""
        if rtt_ms < 0:
            raise ValueError(f"rtt must be >= 0: {rtt_ms}")
        self._matrix[(a, b)] = rtt_ms
        if symmetric:
            self._matrix[(b, a)] = rtt_ms

    def base_rtt_ms(self, a: str, b: str) -> float:
        if a == b:
            return 0.1
        return self._matrix.get((a, b), self.default_ms)

    def expected_rtt_ms(self, src: EndpointInfo, dst: EndpointInfo) -> float:
        return self.base_rtt_ms(src.endpoint_id, dst.endpoint_id)

    def sample_rtt_ms(
        self, src: EndpointInfo, dst: EndpointInfo, rng: random.Random
    ) -> float:
        return self.jitter.apply(self.expected_rtt_ms(src, dst), rng)

    def configured_pairs(self) -> int:
        """Number of directed pairs explicitly configured."""
        return len(self._matrix)


class HashedPairRttModel:
    """Deterministic pseudo-random pairwise base RTTs.

    Like :class:`MatrixRttModel`, but the base RTT of every (unordered)
    endpoint pair is derived by hashing the pair with a seed, uniform in
    ``[min_ms, max_ms]``. This covers experiments where endpoints appear
    dynamically (churned volunteer nodes): any pair that ever comes into
    existence already has a stable, reproducible base RTT — the software
    analogue of the paper's ``tc``-configured pairwise latencies drawn
    from "real-world measurement data" (8-55 ms in §V-D1).
    """

    jitter_decomposable = True
    cacheable_expected = True

    def __init__(
        self,
        min_ms: float = 8.0,
        max_ms: float = 55.0,
        seed: int = 0,
        jitter: Optional[JitterModel] = None,
    ) -> None:
        if not 0 <= min_ms <= max_ms:
            raise ValueError(f"need 0 <= min_ms <= max_ms: {min_ms}, {max_ms}")
        self.min_ms = min_ms
        self.max_ms = max_ms
        self.seed = seed
        self.jitter = jitter if jitter is not None else JitterModel(sigma=0.08)

    def base_rtt_ms(self, a: str, b: str) -> float:
        if a == b:
            return 0.1
        import hashlib

        key = "|".join(sorted((a, b)))
        digest = hashlib.sha256(f"{self.seed}:{key}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / float(2**64)
        return self.min_ms + fraction * (self.max_ms - self.min_ms)

    def expected_rtt_ms(self, src: EndpointInfo, dst: EndpointInfo) -> float:
        return self.base_rtt_ms(src.endpoint_id, dst.endpoint_id)

    def sample_rtt_ms(
        self, src: EndpointInfo, dst: EndpointInfo, rng: random.Random
    ) -> float:
        return self.jitter.apply(self.expected_rtt_ms(src, dst), rng)
