"""Network substrate: RTT, jitter, bandwidth, links and topologies.

The paper's client-to-edge connectivity is "determined by local ISP
infrastructures and unpredictable networking conditions" (§III-A). This
package models exactly the quantities the selection algorithm consumes:

- :class:`~repro.net.latency.DistanceRttModel` — RTT propagation delay
  (``D_prop``) from great-circle distance plus per-tier ISP inflation and
  lognormal jitter, calibrated against the paper's Fig. 1 measurements.
- :class:`~repro.net.latency.MatrixRttModel` — explicit pairwise base
  RTTs (the emulation experiments configure pairwise latency with ``tc``;
  this is the software equivalent).
- :mod:`~repro.net.bandwidth` — data transfer delay (``D_trans``) given
  message size and endpoint uplink/downlink caps.
- :class:`~repro.net.link.Link` — a stateful client-to-edge connection
  with establishment cost (used to contrast proactive vs reactive
  connections, Fig. 4/10).
- :class:`~repro.net.topology.NetworkTopology` — the registry tying
  endpoints, RTT model and bandwidth model together.
"""

from repro.net.bandwidth import BandwidthModel, transfer_ms
from repro.net.latency import (
    DistanceRttModel,
    HashedPairRttModel,
    JitterModel,
    MatrixRttModel,
    NetworkTier,
    RttModel,
)
from repro.net.link import Link, LinkState
from repro.net.topology import NetworkEndpoint, NetworkTopology

__all__ = [
    "NetworkTier",
    "RttModel",
    "JitterModel",
    "DistanceRttModel",
    "MatrixRttModel",
    "HashedPairRttModel",
    "BandwidthModel",
    "transfer_ms",
    "Link",
    "LinkState",
    "NetworkEndpoint",
    "NetworkTopology",
]
