"""Timestamped events and the stable event queue.

The queue is a binary heap ordered by ``(time, sequence)``. The sequence
number makes ordering *stable*: two events scheduled for the same instant
fire in the order they were scheduled, which keeps simulations
deterministic across runs and platforms.

Events support O(1) logical cancellation: ``cancel()`` marks the event,
and the kernel skips cancelled events when popping. This is the standard
"lazy deletion" approach used by ``sched``/asyncio and avoids O(n) heap
surgery.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulation time (ms) at which the event fires.
        seq: monotonically increasing tie-breaker assigned by the queue.
        callback: zero-argument callable invoked by the kernel.
        cancelled: True once :meth:`cancel` has been called.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Mark this event as cancelled; the kernel will skip it."""
        self.cancelled = True
        # Drop the reference so cancelled closures (and anything they
        # capture) can be garbage collected even while still heap-resident.
        self.callback = _noop

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        label = f" {self.label!r}" if self.label else ""
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state}{label})"


def _noop() -> None:
    return None


class EventPool:
    """A free-list of :class:`Event` objects for allocation-heavy loops.

    The metro kernel's per-client fallback path schedules one event per
    frame — tens of millions of short-lived ``Event`` allocations per
    simulated hour. Recycling fired events through a bounded free-list
    keeps that path off the allocator. Usage contract: events obtained
    from :meth:`acquire` must be handed back via :meth:`release` only
    after they have fired (or been cancelled *and* popped) — a pooled
    event still sitting in a heap must never be reused.
    """

    __slots__ = ("_free", "_max_size", "acquired", "recycled")

    def __init__(self, max_size: int = 4096) -> None:
        if max_size < 0:
            raise ValueError(f"max_size must be >= 0, got {max_size}")
        self._free: List[Event] = []
        self._max_size = max_size
        #: Total acquire() calls (pool hits + fresh allocations).
        self.acquired = 0
        #: acquire() calls served from the free-list.
        self.recycled = 0

    def acquire(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> Event:
        """A reinitialised pooled event, or a fresh one if the pool is dry."""
        self.acquired += 1
        if self._free:
            self.recycled += 1
            event = self._free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.cancelled = False
            event.label = label
            return event
        return Event(time, seq, callback, label)

    def release(self, event: Event) -> None:
        """Return a fired event to the free-list (drops when full)."""
        if len(self._free) < self._max_size:
            event.callback = _noop  # break closure reference cycles early
            self._free.append(event)

    def __len__(self) -> int:
        return len(self._free)


class EventQueue:
    """A stable min-heap of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute time ``time`` and return the event."""
        event = Event(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def push_pooled(
        self,
        pool: EventPool,
        time: float,
        callback: Callable[[], Any],
        label: str = "",
    ) -> Event:
        """Schedule via ``pool.acquire`` instead of allocating a new event."""
        event = pool.acquire(time, next(self._counter), callback, label)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if the queue is empty.

        Cancelled events encountered on the way are discarded silently.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def pop_until(self, limit: float) -> Optional[Event]:
        """Pop the earliest pending event with ``time <= limit``, or None.

        Equivalent to ``peek_time()`` + ``pop()`` but walks past each
        cancelled entry once instead of twice — this is the kernel's
        ``run_until`` hot path.
        """
        heap = self._heap
        while heap:
            if heap[0].time > limit:
                return None
            event = heapq.heappop(heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None.

        Skips over (and permanently discards) cancelled events at the top
        of the heap.
        """
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def clear(self) -> None:
        self._heap.clear()

    def pending(self) -> Tuple[Event, ...]:
        """Snapshot of non-cancelled events in fire order (for debugging)."""
        return tuple(sorted(e for e in self._heap if not e.cancelled))
