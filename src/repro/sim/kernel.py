"""The discrete-event simulator kernel.

:class:`Simulator` owns the clock and the event queue, and exposes the
scheduling surface used by every other subsystem:

- ``schedule(delay, fn)`` / ``schedule_at(time, fn)`` — one-shot events.
- ``every(period, fn, ...)`` — periodic timers, with optional jitter and
  start offset, returning a :class:`TimerHandle` for cancellation.
- ``run_until(t)`` / ``run()`` / ``step()`` — drive the loop.

Exceptions raised inside event callbacks propagate out of ``run*`` by
default (fail fast during development); a scenario may install an
``error_handler`` to log-and-continue instead, which mirrors how a real
deployment tolerates a single misbehaving node.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue


class TimerHandle:
    """Cancellation handle for a periodic timer created by ``Simulator.every``."""

    __slots__ = ("_cancelled", "_current_event")

    def __init__(self) -> None:
        self._cancelled = False
        self._current_event: Optional[Event] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Stop the timer; any in-flight occurrence is cancelled too."""
        self._cancelled = True
        if self._current_event is not None:
            self._current_event.cancel()
            self._current_event = None


class Simulator:
    """Deterministic discrete-event loop.

    Args:
        start: initial clock value (ms).
        error_handler: optional callable ``(exception, event) -> None``.
            When provided, exceptions from callbacks are passed to it and
            the loop continues; when absent, exceptions propagate.
    """

    def __init__(
        self,
        start: float = 0.0,
        error_handler: Optional[Callable[[BaseException, Event], None]] = None,
    ) -> None:
        self.clock = SimClock(start)
        self.queue = EventQueue()
        self.error_handler = error_handler
        self.events_processed = 0
        #: Optional :class:`~repro.obs.profile.KernelProfiler`; when
        #: installed, every dispatch reports (label, wall-clock handler
        #: time, remaining queue depth). Uninstalled cost: one ``is
        #: None`` check per event.
        self.profiler = None
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in ms."""
        return self.clock.now

    def schedule(
        self, delay: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Negative delays are clamped to zero (fire "immediately", but still
        through the queue so ordering stays stable).
        """
        if delay < 0:
            delay = 0.0
        return self.queue.push(self.clock.now + delay, callback, label)

    def schedule_at(
        self, when: float, callback: Callable[[], Any], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute time ``when`` (ms).

        Raises:
            ValueError: if ``when`` is in the simulated past.
        """
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: now={self.clock.now}, when={when}"
            )
        return self.queue.push(when, callback, label)

    def every(
        self,
        period: float,
        callback: Callable[[], Any],
        *,
        start_after: Optional[float] = None,
        jitter: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> TimerHandle:
        """Run ``callback`` every ``period`` ms.

        Args:
            period: nominal period in ms; must be positive.
            start_after: delay before the first firing (defaults to one
                period).
            jitter: optional zero-argument callable returning an additive
                perturbation (ms) applied independently to each firing —
                used to de-synchronize client probing loops the way real
                clients naturally drift.
            label: debug label attached to scheduled events.

        Returns:
            A :class:`TimerHandle`; call ``cancel()`` to stop the timer.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        handle = TimerHandle()
        first_delay = period if start_after is None else start_after
        push = self.queue.push
        clock = self.clock

        # Two reschedule variants so the (far more common) unjittered
        # timer pays no per-fire jitter branches; heartbeats and monitor
        # loops fire millions of times in metro-scale runs.
        if jitter is None:

            def fire() -> None:
                if handle.cancelled:
                    return
                callback()
                if handle.cancelled:  # callback may have cancelled the timer
                    return
                handle._current_event = push(clock.now + period, fire, label)

        else:

            def fire() -> None:
                if handle.cancelled:
                    return
                callback()
                if handle.cancelled:
                    return
                delay = period + jitter()
                if delay <= 0:
                    delay = period
                handle._current_event = push(clock.now + delay, fire, label)

        handle._current_event = self.schedule(first_delay, fire, label)
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single earliest event. Returns False if queue empty."""
        event = self.queue.pop()
        if event is None:
            return False
        self.clock.advance_to(event.time)
        self._dispatch(event)
        return True

    def run_until(self, until: float) -> None:
        """Run events with ``time <= until``, then set the clock to ``until``.

        Events scheduled exactly at ``until`` are executed.
        """
        self._running = True
        self._stop_requested = False
        pop_until = self.queue.pop_until
        advance_to = self.clock.advance_to
        try:
            while not self._stop_requested:
                event = pop_until(until)
                if event is None:
                    break
                advance_to(event.time)
                self._dispatch(event)
            if self.clock.now < until and not self._stop_requested:
                advance_to(until)
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the queue drains (or ``max_events`` is hit)."""
        self._running = True
        self._stop_requested = False
        count = 0
        try:
            while not self._stop_requested:
                if max_events is not None and count >= max_events:
                    break
                if not self.step():
                    break
                count += 1
        finally:
            self._running = False

    def stop(self) -> None:
        """Request the current ``run``/``run_until`` to stop after this event."""
        self._stop_requested = True

    def _dispatch(self, event: Event) -> None:
        self.events_processed += 1
        profiler = self.profiler
        if profiler is None:
            try:
                event.callback()
            except Exception as exc:  # noqa: BLE001 - kernel boundary
                if self.error_handler is None:
                    raise
                self.error_handler(exc, event)
            return
        start = perf_counter()
        try:
            event.callback()
        except Exception as exc:  # noqa: BLE001 - kernel boundary
            if self.error_handler is None:
                raise
            self.error_handler(exc, event)
        finally:
            profiler.record(
                event.label, (perf_counter() - start) * 1000.0, len(self.queue)
            )

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.clock.now:.3f}ms, pending={len(self.queue)}, "
            f"processed={self.events_processed})"
        )
