"""Virtual simulation clock.

The clock is owned by the :class:`~repro.sim.kernel.Simulator` and only
advanced by it. Components hold a reference to the clock and read
``clock.now`` — they never advance it themselves.

Times are floats in milliseconds. Milliseconds are used (rather than
seconds) because every quantity in the paper — RTT propagation delay,
per-frame processing time, end-to-end latency — is reported in ms.
"""

from __future__ import annotations


class SimClock:
    """A monotonically non-decreasing virtual clock.

    >>> clock = SimClock()
    >>> clock.now
    0.0
    >>> clock.advance_to(12.5)
    >>> clock.now
    12.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulation time in seconds (convenience for reports)."""
        return self._now / 1000.0

    def advance_to(self, when: float) -> None:
        """Advance the clock to ``when``.

        Raises:
            ValueError: if ``when`` is earlier than the current time.
                A discrete-event kernel must never move backwards; this
                guards against event-queue corruption.
        """
        if when < self._now:
            raise ValueError(
                f"cannot move clock backwards: now={self._now}, requested={when}"
            )
        self._now = float(when)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (used when re-running a scenario)."""
        if start < 0:
            raise ValueError(f"clock cannot start at negative time: {start}")
        self._now = float(start)

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f}ms)"
