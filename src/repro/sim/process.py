"""Generator-based cooperative processes.

Sequential protocol logic (probe each candidate, wait for the reply, then
join) reads much more naturally as a coroutine than as a chain of
callbacks. A :class:`Process` wraps a generator that yields delay values
(ms); the kernel resumes the generator after each delay.

Example::

    def probing_loop(sim):
        while True:
            yield 500.0            # sleep 500 ms
            do_probe_round()

    Process(sim, probing_loop(sim))

Yield values:
    - ``float``/``int`` — sleep that many milliseconds.
    - :func:`sleep` objects — same, but reads better.

A process finishes when its generator returns; ``stop()`` terminates it
early. Exceptions inside the generator propagate through the kernel's
error handling.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional, Union

from repro.sim.events import Event
from repro.sim.kernel import Simulator

Yieldable = Union[float, int, "sleep"]


class sleep:  # noqa: N801 - intentionally lowercase, reads as a verb
    """Yieldable sleep marker: ``yield sleep(250)`` sleeps 250 ms."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"sleep delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:
        return f"sleep({self.delay})"


class Process:
    """Drive a generator as a cooperative simulation process."""

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Yieldable, None, Any],
        *,
        name: str = "",
        start_delay: float = 0.0,
        on_finish: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        self.sim = sim
        self.name = name or f"process-{id(self):x}"
        self._generator = generator
        self._on_finish = on_finish
        self._finished = False
        self._stopped = False
        self._pending_event: Optional[Event] = None
        self._pending_event = sim.schedule(start_delay, self._resume, label=self.name)

    @property
    def finished(self) -> bool:
        """True once the generator returned, raised, or was stopped."""
        return self._finished

    def stop(self) -> None:
        """Terminate the process; its generator is closed."""
        if self._finished:
            return
        self._stopped = True
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._generator.close()
        self._finish()

    def _resume(self) -> None:
        if self._finished or self._stopped:
            return
        self._pending_event = None
        try:
            yielded = next(self._generator)
        except StopIteration:
            self._finish()
            return
        delay = yielded.delay if isinstance(yielded, sleep) else float(yielded)
        if delay < 0:
            raise ValueError(
                f"process {self.name!r} yielded negative delay {delay}"
            )
        self._pending_event = self.sim.schedule(delay, self._resume, label=self.name)

    def _finish(self) -> None:
        self._finished = True
        if self._on_finish is not None:
            self._on_finish(self)

    def __repr__(self) -> str:
        state = "finished" if self._finished else "running"
        return f"Process({self.name!r}, {state})"
