"""Discrete-event simulation kernel.

This package provides the deterministic, seedable simulation substrate on
which the edge-selection system runs. It is intentionally small and
dependency-free:

- :class:`~repro.sim.clock.SimClock` — the virtual clock (milliseconds).
- :class:`~repro.sim.events.Event` / :class:`~repro.sim.events.EventQueue`
  — a stable priority queue of timestamped callbacks.
- :class:`~repro.sim.kernel.Simulator` — the event loop: ``schedule()``,
  ``run_until()``, ``run()``, periodic timers and cancellation handles.
- :class:`~repro.sim.process.Process` — generator-based cooperative
  processes that ``yield`` delays, for writing sequential protocol logic.
- :class:`~repro.sim.random.RandomStreams` — named, independently seeded
  random streams so adding a new consumer never perturbs existing ones.

All simulation times are floats in **milliseconds** — the natural unit of
the paper, whose latencies range from a few ms to a few hundred ms.
"""

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventQueue
from repro.sim.kernel import Simulator, TimerHandle
from repro.sim.process import Process, sleep
from repro.sim.random import RandomStreams

__all__ = [
    "SimClock",
    "Event",
    "EventQueue",
    "Simulator",
    "TimerHandle",
    "Process",
    "sleep",
    "RandomStreams",
]
