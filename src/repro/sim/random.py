"""Named, independently seeded random streams.

A simulation with a single shared RNG is fragile: adding one extra draw in
any component shifts every subsequent draw everywhere, so results change
for unrelated reasons. ``RandomStreams`` derives an independent
``random.Random`` per *named* stream from a root seed, so each subsystem
(network jitter, churn arrivals, workload timing, ...) consumes its own
sequence.

Derivation hashes the (root_seed, name) pair with a stable digest so that
stream assignment is deterministic across Python processes and versions
(``hash()`` is salted per-process and must not be used).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of named, reproducible ``random.Random`` streams.

    >>> streams = RandomStreams(42)
    >>> a = streams.get("network").random()
    >>> b = RandomStreams(42).get("network").random()
    >>> a == b
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Create a child ``RandomStreams`` rooted under ``name``.

        Useful when a component itself owns multiple sub-streams.
        """
        return RandomStreams(derive_seed(self.root_seed, name))

    def for_run(self, run_index: int) -> "RandomStreams":
        """Create the child ``RandomStreams`` for the ``run_index``-th run.

        A thin, *indexed* wrapper over :func:`derive_seed` — the seeding
        primitive of :mod:`repro.sweep`: a sweep replicates an experiment
        across runs, and each run must consume a random universe that is
        (a) disjoint from every other run's and (b) a pure function of
        ``(root_seed, run_index)``, so results do not depend on execution
        order or on which worker process a run lands on.

        >>> RandomStreams(42).for_run(3).root_seed == \
            RandomStreams(42).for_run(3).root_seed
        True
        """
        if run_index < 0:
            raise ValueError(f"run_index must be >= 0: {run_index}")
        return RandomStreams(derive_seed(self.root_seed, f"run:{run_index}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:
        return f"RandomStreams(root_seed={self.root_seed}, streams={sorted(self._streams)})"
