"""End-of-run attachment checks, shared by both backends.

These are the original recovery invariants from
:mod:`repro.faults.scenarios`, re-expressed as a pure function over an
:class:`AttachmentView` — a backend-neutral snapshot of who believes
what at the end of a run. The sim builds the view from its node/client
objects, the live runtime from its cluster actors; both get the exact
same checks (and the exact same problem strings the chaos reports and
CI smoke jobs have always shown).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

__all__ = ["AttachmentView", "check_attachment_view"]


@dataclass
class AttachmentView:
    """End-of-run attachment state from one backend.

    Attributes:
        client_edges: user id -> the edge the client believes it is
            attached to (None = not attached).
        node_alive: node id -> liveness at end of run.
        node_attached: node id -> users in its admission state. Dead
            nodes may be omitted — their state is not checked.
    """

    client_edges: Dict[str, Optional[str]] = field(default_factory=dict)
    node_alive: Dict[str, bool] = field(default_factory=dict)
    node_attached: Dict[str, Set[str]] = field(default_factory=dict)


def check_attachment_view(view: AttachmentView) -> List[str]:
    """The recovery invariants on one end-of-run view.

    Every client must be re-attached to an alive node that agrees it is
    attached, and no alive node may hold admission state for a user who
    has moved on (stranded state). Returns human-readable problem
    strings; empty == the run recovered cleanly.
    """
    problems: List[str] = []
    for user_id, edge_id in view.client_edges.items():
        if edge_id is None:
            problems.append(f"{user_id} not re-attached by end of run")
            continue
        if edge_id not in view.node_alive or not view.node_alive[edge_id]:
            problems.append(f"{user_id} attached to dead node {edge_id}")
        elif user_id not in view.node_attached.get(edge_id, set()):
            problems.append(
                f"{user_id} claims {edge_id} but is missing from its admission state"
            )
    for node_id, attached in view.node_attached.items():
        if not view.node_alive.get(node_id, False):
            continue
        for user_id in sorted(attached):
            if view.client_edges.get(user_id) != node_id:
                problems.append(
                    f"stranded admission state: {user_id} still on {node_id}"
                )
    return problems
