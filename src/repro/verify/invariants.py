"""Typed streaming invariants over obs traces.

Each :class:`Invariant` is a small state machine fed one trace event at
a time through :meth:`Invariant.observe`; end-of-trace conditions are
emitted by :meth:`Invariant.finish`. A tripped invariant yields a
:class:`Violation` pinned to the index of the event that tripped it —
the anchor the schedule-search shrinker uses to decide whether a
reduced plan still reproduces the same failure.

The suite is backend-agnostic: both runtimes emit the same typed event
schema, only the meaning of ``t_ms`` differs (plan/sim time vs.
wall-clock milliseconds). Budgets are expressed in plan-time
milliseconds and multiplied by ``time_scale`` for wall-clock traces
(the live chaos controller replays ``plan_ms_per_s`` plan milliseconds
per wall second, so its traces use ``time_scale = 1000 /
plan_ms_per_s``).

Invariants enforced:

- :class:`NoSplitBrain` — never two serving primaries for one
  control-plane shard: at most one ``manager_promote`` per failure
  epoch, and never a promotion of the replica that is currently down.
- :class:`PromotionBudget` — a shard-targeted outage must be answered
  by a ``manager_promote`` within the failure-detection budget.
- :class:`ClientStall` — no client goes longer than the failover budget
  between completed frames once it has joined (and must be streaming
  again by end of trace: the fault-free settle tail).
- :class:`SeqMonotonic` — per-user frame sequence numbers are strictly
  monotonic (Algorithm 1's seqNum discipline as visible in the trace).
- :class:`AttachmentConsistency` — no frame completes on a dead node,
  no frames keep flowing to a node long after it died or after the
  node's lease expired the attachment (stranded admission), and nobody
  attaches to a dead node.
- :class:`DegradedFallbackCorrect` — ``degraded_fallback`` fires only
  when there is actual evidence of manager unavailability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.obs.events import EVENT_TYPES, TraceEvent, event_from_dict

__all__ = [
    "Violation",
    "Budgets",
    "Invariant",
    "NoSplitBrain",
    "PromotionBudget",
    "ClientStall",
    "SeqMonotonic",
    "AttachmentConsistency",
    "DegradedFallbackCorrect",
    "default_invariants",
    "check_events",
]

EventSource = Union[TraceEvent, Dict[str, Any]]


# ----------------------------------------------------------------------
# The violation type
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One tripped invariant, pinned to the trace position that tripped it.

    ``event_index`` is the 0-based index into the checked event
    sequence (``-1`` for end-of-trace conditions); ``subject`` names
    the affected user/node/shard where one exists.
    """

    invariant: str
    message: str
    event_index: int
    t_ms: float
    subject: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "message": self.message,
            "event_index": self.event_index,
            "t_ms": self.t_ms,
            "subject": self.subject,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(
            invariant=str(data["invariant"]),
            message=str(data["message"]),
            event_index=int(data["event_index"]),
            t_ms=float(data["t_ms"]),
            subject=str(data.get("subject", "")),
        )

    def __str__(self) -> str:
        where = f"event #{self.event_index}" if self.event_index >= 0 else "end of trace"
        return f"[{self.invariant}] {self.message} ({where} @ {self.t_ms:.0f}ms)"


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Budgets:
    """Timing budgets the invariants enforce, in plan-time milliseconds.

    Attributes:
        promotion_ms: how long a shard may stay primary-less after a
            targeted outage before a standby must have been promoted
            (the failure-detection budget plus scheduling slack).
        failover_ms: the longest a joined client may go between
            completed frames — covers detection, failover and re-join.
        startup_ms: grace between a client's first ``join_accept`` and
            its first completed frame.
        dead_grace_ms: how long frames may still be *launched at* a
            dead node (the client has not detected the death yet);
            completions on a dead node are never allowed.
        degraded_slack_ms: how far past the last evidence of manager
            unavailability a ``degraded_fallback`` may still fire
            (in-flight retries drain after the outage window closes).
    """

    promotion_ms: float = 250.0
    failover_ms: float = 2_000.0
    startup_ms: float = 2_000.0
    dead_grace_ms: float = 1_000.0
    degraded_slack_ms: float = 1_500.0

    def scaled(self, time_scale: float) -> "Budgets":
        """Budgets for a trace whose clock runs at ``time_scale`` times
        plan time (live chaos: ``1000 / plan_ms_per_s``)."""
        if time_scale == 1.0:
            return self
        return Budgets(
            promotion_ms=self.promotion_ms * time_scale,
            failover_ms=self.failover_ms * time_scale,
            startup_ms=self.startup_ms * time_scale,
            dead_grace_ms=self.dead_grace_ms * time_scale,
            degraded_slack_ms=self.degraded_slack_ms * time_scale,
        )

    @classmethod
    def from_config(cls, config: object, *, slack_ms: float = 50.0) -> "Budgets":
        """Derive nominal budgets from a :class:`SystemConfig`.

        The promotion budget is the system's failure-detection window
        plus scheduling slack; the failover budget covers a detection,
        a full probing round and (if enabled) an attachment lease.
        """
        detection = float(getattr(config, "failure_detection_ms", 200.0))
        probing = float(getattr(config, "probing_period_ms", 2_000.0))
        lease = getattr(config, "attachment_lease_ms", None)
        lease_ms = float(lease) if lease else probing
        return cls(
            promotion_ms=detection + slack_ms,
            failover_ms=max(2.0 * probing, detection + lease_ms) + 1_000.0,
            startup_ms=probing + 1_000.0,
            dead_grace_ms=max(1_000.0, detection + 500.0),
            degraded_slack_ms=probing / 2.0 + 500.0,
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "promotion_ms": self.promotion_ms,
            "failover_ms": self.failover_ms,
            "startup_ms": self.startup_ms,
            "dead_grace_ms": self.dead_grace_ms,
            "degraded_slack_ms": self.degraded_slack_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Budgets":
        known = {f: float(v) for f, v in data.items() if f in cls().to_dict()}
        return replace(cls(), **known)


# ----------------------------------------------------------------------
# Invariant base
# ----------------------------------------------------------------------
class Invariant:
    """One streaming recovery invariant.

    Subclasses keep whatever running state they need; both hooks yield
    :class:`Violation` instances. ``observe`` sees every event in trace
    order; ``finish`` runs once after the last event with the trace's
    final timestamp.
    """

    name: str = "invariant"

    def __init__(self, budgets: Budgets) -> None:
        self.budgets = budgets

    def observe(self, index: int, event: TraceEvent) -> Iterable[Violation]:
        return ()

    def finish(self, end_ms: float) -> Iterable[Violation]:
        return ()

    def _violation(
        self, message: str, index: int, t_ms: float, subject: str = ""
    ) -> Violation:
        return Violation(self.name, message, index, t_ms, subject)


# ----------------------------------------------------------------------
# Control plane: split brain and promotion budget
# ----------------------------------------------------------------------
def _outage_shard(event: TraceEvent) -> Optional[int]:
    """Shard index of a shard-targeted outage action event, else None."""
    dst = str(getattr(event, "dst", ""))
    if dst.startswith("shard:"):
        return int(dst.split(":", 1)[1])
    return None


class NoSplitBrain(Invariant):
    """Never two serving primaries for one control-plane shard.

    Visible in the trace as either (a) two ``manager_promote`` events
    for the same shard within one failure epoch (no intervening
    outage-window boundary — two replicas each believing they won the
    promotion), or (b) a promotion that names the very replica the
    active outage took down (a downed primary serving while down).
    """

    name = "no_split_brain"

    def __init__(self, budgets: Budgets) -> None:
        super().__init__(budgets)
        self._primary: Dict[int, int] = {}
        self._downed: Dict[int, int] = {}
        self._promoted_this_epoch: Set[int] = set()

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        kind = getattr(event, "kind", "")
        if event.type == "fault_injected" and kind in ("outage_start", "outage_end"):
            shard = _outage_shard(event)
            if shard is None:
                return
            self._promoted_this_epoch.discard(shard)
            if kind == "outage_start":
                self._downed[shard] = self._primary.get(shard, 0)
            else:
                self._downed.pop(shard, None)
        elif event.type == "manager_promote":
            shard = event.shard  # type: ignore[attr-defined]
            replica = event.replica  # type: ignore[attr-defined]
            if shard in self._promoted_this_epoch:
                yield self._violation(
                    f"shard {shard}: second primary promoted (replica "
                    f"{replica}) within one failure epoch",
                    index,
                    event.t_ms,
                    subject=f"shard:{shard}",
                )
            if self._downed.get(shard) == replica:
                yield self._violation(
                    f"shard {shard}: downed primary replica {replica} "
                    f"promoted while its outage is active",
                    index,
                    event.t_ms,
                    subject=f"shard:{shard}",
                )
            self._promoted_this_epoch.add(shard)
            self._primary[shard] = replica


class PromotionBudget(Invariant):
    """Standby promotion within the failure-detection budget.

    A shard-targeted ``outage_start`` opens a promotion deadline; the
    shard's ``manager_promote`` must arrive within
    ``budgets.promotion_ms``. Missing promotions are only reported when
    the trace shows standby capability at all (some shard promoted), or
    when the caller asserts it via ``expect_promotion=True`` — a
    replicas=1 trace has nothing to promote.
    """

    name = "promotion_budget"

    def __init__(
        self, budgets: Budgets, *, expect_promotion: Optional[bool] = None
    ) -> None:
        super().__init__(budgets)
        self.expect_promotion = expect_promotion
        self._pending: Dict[int, Tuple[int, float]] = {}
        self._any_promote = False
        self._missing: List[Violation] = []

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        if event.type == "fault_injected":
            kind = getattr(event, "kind", "")
            shard = _outage_shard(event)
            if shard is None:
                return
            if kind == "outage_start":
                self._pending.setdefault(shard, (index, event.t_ms))
            elif kind == "outage_end" and shard in self._pending:
                start_index, t0 = self._pending.pop(shard)
                if event.t_ms - t0 > self.budgets.promotion_ms:
                    self._missing.append(
                        self._violation(
                            f"shard {shard}: primary down for "
                            f"{event.t_ms - t0:.0f}ms with no standby "
                            f"promoted (budget "
                            f"{self.budgets.promotion_ms:.0f}ms)",
                            start_index,
                            t0,
                            subject=f"shard:{shard}",
                        )
                    )
        elif event.type == "manager_promote":
            self._any_promote = True
            shard = event.shard  # type: ignore[attr-defined]
            if shard in self._pending:
                _, t0 = self._pending.pop(shard)
                gap = event.t_ms - t0
                if gap > self.budgets.promotion_ms:
                    yield self._violation(
                        f"shard {shard}: promotion took {gap:.0f}ms "
                        f"(budget {self.budgets.promotion_ms:.0f}ms)",
                        index,
                        event.t_ms,
                        subject=f"shard:{shard}",
                    )

    def finish(self, end_ms: float) -> Iterator[Violation]:
        for shard, (start_index, t0) in sorted(self._pending.items()):
            if end_ms - t0 > self.budgets.promotion_ms:
                self._missing.append(
                    self._violation(
                        f"shard {shard}: outage still unanswered at end of "
                        f"trace ({end_ms - t0:.0f}ms, budget "
                        f"{self.budgets.promotion_ms:.0f}ms)",
                        start_index,
                        t0,
                        subject=f"shard:{shard}",
                    )
                )
        expected = (
            self.expect_promotion
            if self.expect_promotion is not None
            else self._any_promote
        )
        if expected:
            yield from self._missing


# ----------------------------------------------------------------------
# Client progress
# ----------------------------------------------------------------------
class ClientStall(Invariant):
    """No client stalled beyond the failover budget once it joined.

    Progress means a completed frame (``frame_done`` with a latency).
    The first completion must come within ``startup_ms`` of the first
    ``join_accept``; every later completion within ``failover_ms`` of
    the previous one; and the last completion within ``failover_ms`` of
    the end of the trace (the fault-free settle tail must be streaming).
    """

    name = "failover_stall"

    def __init__(self, budgets: Budgets) -> None:
        super().__init__(budgets)
        self._joined_ms: Dict[str, float] = {}
        self._last_done: Dict[str, Tuple[int, float]] = {}

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        if event.type == "join_accept":
            self._joined_ms.setdefault(event.user_id, event.t_ms)  # type: ignore[attr-defined]
        elif event.type == "frame_done" and event.latency_ms is not None:  # type: ignore[attr-defined]
            user = event.user_id  # type: ignore[attr-defined]
            if user in self._last_done:
                _, prev = self._last_done[user]
                gap = event.t_ms - prev
                if gap > self.budgets.failover_ms:
                    yield self._violation(
                        f"{user}: {gap:.0f}ms between completed frames "
                        f"(failover budget {self.budgets.failover_ms:.0f}ms)",
                        index,
                        event.t_ms,
                        subject=user,
                    )
            elif user in self._joined_ms:
                gap = event.t_ms - self._joined_ms[user]
                if gap > self.budgets.startup_ms:
                    yield self._violation(
                        f"{user}: first completed frame {gap:.0f}ms after "
                        f"join (startup budget {self.budgets.startup_ms:.0f}ms)",
                        index,
                        event.t_ms,
                        subject=user,
                    )
            self._last_done[user] = (index, event.t_ms)

    def finish(self, end_ms: float) -> Iterator[Violation]:
        for user, joined in sorted(self._joined_ms.items()):
            if user not in self._last_done:
                yield self._violation(
                    f"{user}: joined but never completed a frame",
                    -1,
                    end_ms,
                    subject=user,
                )
                continue
            _, last = self._last_done[user]
            gap = end_ms - last
            if gap > self.budgets.failover_ms:
                yield self._violation(
                    f"{user}: silent for the last {gap:.0f}ms of the trace "
                    f"(failover budget {self.budgets.failover_ms:.0f}ms)",
                    -1,
                    end_ms,
                    subject=user,
                )


class SeqMonotonic(Invariant):
    """Per-user frame sequence numbers strictly increase.

    Both backends assign client-side frame ids monotonically; a repeat
    or regression in the trace means duplicated or replayed offload
    state (the trace-visible face of Algorithm 1's seqNum discipline).
    """

    name = "seq_monotonic"

    def __init__(self, budgets: Budgets) -> None:
        super().__init__(budgets)
        self._last: Dict[str, int] = {}

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        if event.type != "frame_start":
            return
        user = event.user_id  # type: ignore[attr-defined]
        frame_id = event.frame_id  # type: ignore[attr-defined]
        last = self._last.get(user)
        if last is not None and frame_id <= last:
            yield self._violation(
                f"{user}: frame id {frame_id} after {last} "
                f"(per-user sequence must be strictly monotonic)",
                index,
                event.t_ms,
                subject=user,
            )
        self._last[user] = frame_id


# ----------------------------------------------------------------------
# Attachment consistency
# ----------------------------------------------------------------------
class AttachmentConsistency(Invariant):
    """Attachment state stays coherent under failures.

    - A frame must never *complete* on a dead node beyond the in-flight
      grace window (a response already on the wire when the node died
      may legitimately arrive).
    - Frames may still be launched at a dead node only inside the
      detection grace window (the client has not noticed yet).
    - After ``attachment_expired`` evicted a user, further frames from
      that user to that node without a fresh join are stranded
      admission state.
    - ``join_accept`` / ``covered_failover`` must never attach a user
      to a dead node.
    - A frame must be launched at the node the user is attached to
      (anything else is a double-attach: two nodes both believe they
      serve the user).
    """

    name = "attachment_consistency"

    def __init__(self, budgets: Budgets) -> None:
        super().__init__(budgets)
        self._attached: Dict[str, str] = {}
        self._alive: Dict[str, bool] = {}
        self._died_ms: Dict[str, float] = {}
        self._expired: Set[Tuple[str, str]] = set()
        self._expired_ms: Dict[Tuple[str, str], float] = {}

    def _node_dead(self, node_id: str) -> bool:
        return not self._alive.get(node_id, True)

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        kind = event.type
        if kind == "node_fail":
            self._alive[event.node_id] = False  # type: ignore[attr-defined]
            self._died_ms[event.node_id] = event.t_ms  # type: ignore[attr-defined]
        elif kind == "node_restart":
            node = event.node_id  # type: ignore[attr-defined]
            self._alive[node] = True
            self._expired = {e for e in self._expired if e[0] != node}
        elif kind in ("join_accept", "covered_failover"):
            user = event.user_id  # type: ignore[attr-defined]
            node = event.node_id  # type: ignore[attr-defined]
            if self._node_dead(node):
                what = "joined" if kind == "join_accept" else "failed over to"
                yield self._violation(
                    f"{user} {what} dead node {node}",
                    index,
                    event.t_ms,
                    subject=user,
                )
            self._attached[user] = node
            self._expired.discard((node, user))
        elif kind == "attachment_expired":
            key = (event.node_id, event.user_id)  # type: ignore[attr-defined]
            self._expired.add(key)
            self._expired_ms[key] = event.t_ms
            if self._attached.get(event.user_id) == event.node_id:  # type: ignore[attr-defined]
                # The lease evicted the user's *current* attachment: the
                # client must re-join before frames count as attached.
                self._attached.pop(event.user_id, None)  # type: ignore[attr-defined]
        elif kind == "frame_start":
            user = event.user_id  # type: ignore[attr-defined]
            node = event.node_id  # type: ignore[attr-defined]
            if self._node_dead(node):
                gap = event.t_ms - self._died_ms.get(node, event.t_ms)
                if gap > self.budgets.dead_grace_ms:
                    yield self._violation(
                        f"{user} still sending frames to {node} "
                        f"{gap:.0f}ms after it died (grace "
                        f"{self.budgets.dead_grace_ms:.0f}ms)",
                        index,
                        event.t_ms,
                        subject=user,
                    )
            key = (node, user)
            if key in self._expired:
                gap = event.t_ms - self._expired_ms[key]
                if gap > self.budgets.dead_grace_ms:
                    yield self._violation(
                        f"stranded admission: {user} still sending frames "
                        f"to {node} {gap:.0f}ms after its attachment "
                        f"expired without re-joining",
                        index,
                        event.t_ms,
                        subject=user,
                    )
            attached = self._attached.get(user)
            if attached is not None and attached != node:
                yield self._violation(
                    f"double-attach: {user} sent a frame to {node} while "
                    f"attached to {attached}",
                    index,
                    event.t_ms,
                    subject=user,
                )
        elif kind == "frame_done" and event.latency_ms is not None:  # type: ignore[attr-defined]
            node = event.node_id  # type: ignore[attr-defined]
            if self._node_dead(node):
                # A response already on the wire when the node died may
                # still arrive — only completions past the in-flight
                # grace indicate the node kept serving after death.
                gap = event.t_ms - self._died_ms.get(node, event.t_ms)
                if gap > self.budgets.dead_grace_ms:
                    yield self._violation(
                        f"frame completed on node {node} {gap:.0f}ms "
                        f"after it died for "
                        f"{event.user_id}",  # type: ignore[attr-defined]
                        index,
                        event.t_ms,
                        subject=event.user_id,  # type: ignore[attr-defined]
                    )

    def finish(self, end_ms: float) -> Iterator[Violation]:
        for user, node in sorted(self._attached.items()):
            if self._node_dead(node):
                yield self._violation(
                    f"{user} attached to dead node {node} at end of trace",
                    -1,
                    end_ms,
                    subject=user,
                )


# ----------------------------------------------------------------------
# Degraded fallback
# ----------------------------------------------------------------------
class DegradedFallbackCorrect(Invariant):
    """Degraded fallback only fires under manager unavailability.

    Evidence is any outage-family fault event (a blocked message, an
    ``outage_start``, or an open outage window — whole-manager or
    shard-targeted). A ``degraded_fallback`` with no open window and no
    evidence within ``degraded_slack_ms`` means the client abandoned a
    healthy control plane.
    """

    name = "degraded_fallback"

    def __init__(self, budgets: Budgets) -> None:
        super().__init__(budgets)
        self._open_windows = 0
        self._last_evidence_ms: Optional[float] = None

    def observe(self, index: int, event: TraceEvent) -> Iterator[Violation]:
        if event.type == "fault_injected":
            kind = getattr(event, "kind", "")
            if kind == "outage_start":
                self._open_windows += 1
                self._last_evidence_ms = event.t_ms
            elif kind == "outage_end":
                self._open_windows = max(0, self._open_windows - 1)
                self._last_evidence_ms = event.t_ms
            elif kind == "outage":
                self._last_evidence_ms = event.t_ms
        elif event.type == "degraded_fallback":
            if self._open_windows > 0:
                return
            last = self._last_evidence_ms
            if last is None or event.t_ms - last > self.budgets.degraded_slack_ms:
                since = (
                    "with no manager outage in the trace"
                    if last is None
                    else f"{event.t_ms - last:.0f}ms after the last outage "
                    f"evidence (slack {self.budgets.degraded_slack_ms:.0f}ms)"
                )
                yield self._violation(
                    f"{event.user_id}: degraded fallback {since}",  # type: ignore[attr-defined]
                    index,
                    event.t_ms,
                    subject=event.user_id,  # type: ignore[attr-defined]
                )


# ----------------------------------------------------------------------
# The suite
# ----------------------------------------------------------------------
def default_invariants(
    budgets: Budgets, *, expect_promotion: Optional[bool] = None
) -> List[Invariant]:
    """The full streaming suite, in check order."""
    return [
        NoSplitBrain(budgets),
        PromotionBudget(budgets, expect_promotion=expect_promotion),
        ClientStall(budgets),
        SeqMonotonic(budgets),
        AttachmentConsistency(budgets),
        DegradedFallbackCorrect(budgets),
    ]


def _as_event(item: EventSource) -> Optional[TraceEvent]:
    if isinstance(item, TraceEvent):
        return item
    if str(item.get("type", "")) not in EVENT_TYPES:
        return None  # forward compatibility: unknown tags are skipped
    return event_from_dict(item)


def check_events(
    events: Sequence[EventSource],
    *,
    budgets: Optional[Budgets] = None,
    time_scale: float = 1.0,
    expect_promotion: Optional[bool] = None,
    invariants: Optional[List[Invariant]] = None,
) -> List[Violation]:
    """Run the streaming invariant suite over one trace.

    Accepts either typed :class:`~repro.obs.events.TraceEvent` objects
    or wire-format dicts (one parsed JSONL line each). ``time_scale``
    rescales the budgets for wall-clock traces; ``expect_promotion``
    forces (or suppresses) the missing-promotion check when the
    caller knows the replica count. Returns all violations in trace
    order (end-of-trace conditions last).
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive: {time_scale}")
    budgets = (budgets if budgets is not None else Budgets()).scaled(time_scale)
    suite = (
        invariants
        if invariants is not None
        else default_invariants(budgets, expect_promotion=expect_promotion)
    )
    violations: List[Violation] = []
    end_ms = 0.0
    for index, item in enumerate(events):
        event = _as_event(item)
        if event is None:
            continue
        end_ms = max(end_ms, event.t_ms)
        for invariant in suite:
            violations.extend(invariant.observe(index, event))
    for invariant in suite:
        violations.extend(invariant.finish(end_ms))
    return violations
