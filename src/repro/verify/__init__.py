"""repro.verify — streaming trace invariants for chaos runs.

The recovery guarantees the paper's elasticity story rests on — failover
within a detection budget, standby promotion inside the
failure-detection window, no stranded admission state, degraded
fallback only under manager loss — were previously checked only as
end-state assertions against a handful of hand-written plans. This
package turns each guarantee into a typed, composable **streaming
invariant** checked event-by-event over any obs JSONL trace, from
either backend:

- :func:`check_events` runs the full suite over a trace (event objects
  or wire dicts) and returns a list of typed :class:`Violation`\\ s,
  each pinned to the event index and timestamp that tripped it;
- :class:`Budgets` carries the timing budgets the invariants enforce
  (plan-time milliseconds, scaled by ``time_scale`` for wall-clock
  traces from the live runtime);
- :mod:`repro.verify.endstate` re-expresses the original end-of-run
  attachment checks from :mod:`repro.faults.scenarios` as a pure
  function over an :class:`~repro.verify.endstate.AttachmentView`, so
  both backends share one implementation.

The schedule-search engine in :mod:`repro.faults.search` drives this
suite over machine-generated adversarial fault plans and shrinks any
violating schedule to a minimal reproducer.
"""

from repro.verify.endstate import AttachmentView, check_attachment_view
from repro.verify.invariants import (
    AttachmentConsistency,
    Budgets,
    ClientStall,
    DegradedFallbackCorrect,
    Invariant,
    NoSplitBrain,
    PromotionBudget,
    SeqMonotonic,
    Violation,
    check_events,
    default_invariants,
)

__all__ = [
    "AttachmentConsistency",
    "AttachmentView",
    "Budgets",
    "ClientStall",
    "DegradedFallbackCorrect",
    "Invariant",
    "NoSplitBrain",
    "PromotionBudget",
    "SeqMonotonic",
    "Violation",
    "check_attachment_view",
    "check_events",
    "default_invariants",
]
