"""Offline optimal Edge Assignment (EA) solver.

The paper formulates edge selection as minimizing the average end-to-end
latency over all ``m^n`` assignments (§III-C) — NP-hard in general — and
in Fig. 7 compares the online approaches against "the optimal edge
assignment for this specific configuration based on the application
profile ... and the emulated network setup".

This module reproduces that oracle. An instance is described by expected
(jitter-free) network delays and the analytic processing model of
:func:`repro.nodes.processing.analytic_sojourn_ms`:

``latency(u, j | EA) = E[D_prop(u, j)] + E[D_trans(u, j)] + D_proc(j, S_j)``

The solver is exact for small instances (exhaustive enumeration bounded
by ``exhaustive_limit`` assignments) and otherwise runs greedy
construction followed by first-improvement local search (single-user
moves and pairwise swaps) with multi-start — which for the paper-scale
instances (15 users x 9 nodes) recovers the exhaustive optimum in the
cases small enough to verify.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nodes.hardware import HardwareProfile
from repro.nodes.processing import analytic_sojourn_ms


@dataclass
class OptimalInstance:
    """A static snapshot of the assignment problem.

    Attributes:
        user_ids / node_ids: entity ids, order-defining.
        profiles: node id -> hardware profile.
        expected_network_ms: (user, node) -> expected ``D_prop + D_trans``.
        user_fps: offloading rate per user (defaults to 20).
    """

    user_ids: List[str]
    node_ids: List[str]
    profiles: Dict[str, HardwareProfile]
    expected_network_ms: Dict[Tuple[str, str], float]
    user_fps: Dict[str, float] = field(default_factory=dict)
    default_fps: float = 20.0

    def __post_init__(self) -> None:
        if not self.user_ids:
            raise ValueError("instance needs at least one user")
        if not self.node_ids:
            raise ValueError("instance needs at least one node")
        missing = [n for n in self.node_ids if n not in self.profiles]
        if missing:
            raise ValueError(f"profiles missing for nodes: {missing}")
        for user in self.user_ids:
            for node in self.node_ids:
                if (user, node) not in self.expected_network_ms:
                    raise ValueError(f"network delay missing for ({user}, {node})")

    def fps(self, user_id: str) -> float:
        return self.user_fps.get(user_id, self.default_fps)


#: An assignment maps each user (by index into ``user_ids``) to a node id.
Assignment = Dict[str, str]


def evaluate_assignment(instance: OptimalInstance, assignment: Assignment) -> float:
    """Average end-to-end latency ``P(EA)`` of an assignment.

    Raises:
        ValueError: if any user is unassigned or mapped to an unknown node.
    """
    node_fps: Dict[str, float] = {node: 0.0 for node in instance.node_ids}
    for user in instance.user_ids:
        node = assignment.get(user)
        if node is None:
            raise ValueError(f"user {user!r} unassigned")
        if node not in node_fps:
            raise ValueError(f"user {user!r} assigned to unknown node {node!r}")
        node_fps[node] += instance.fps(user)

    proc_ms = {
        node: analytic_sojourn_ms(instance.profiles[node], node_fps[node])
        for node in instance.node_ids
        if node_fps[node] > 0
    }
    total = 0.0
    for user in instance.user_ids:
        node = assignment[user]
        total += instance.expected_network_ms[(user, node)] + proc_ms[node]
    return total / len(instance.user_ids)


def _greedy(instance: OptimalInstance, order: Sequence[str]) -> Assignment:
    """Insert users one at a time, each to the node minimizing P so far."""
    assignment: Assignment = {}
    node_fps: Dict[str, float] = {node: 0.0 for node in instance.node_ids}
    for user in order:
        best_node: Optional[str] = None
        best_cost = float("inf")
        for node in instance.node_ids:
            # Marginal view: this user's latency plus the degradation the
            # join inflicts on users already on the node (the GO idea).
            fps_after = node_fps[node] + instance.fps(user)
            proc_after = analytic_sojourn_ms(instance.profiles[node], fps_after)
            proc_before = (
                analytic_sojourn_ms(instance.profiles[node], node_fps[node])
                if node_fps[node] > 0
                else 0.0
            )
            existing = sum(1 for u in assignment if assignment[u] == node)
            cost = (
                instance.expected_network_ms[(user, node)]
                + proc_after
                + existing * max(0.0, proc_after - proc_before)
            )
            if cost < best_cost:
                best_cost = cost
                best_node = node
        assert best_node is not None
        assignment[user] = best_node
        node_fps[best_node] += instance.fps(user)
    return assignment


def _local_search(
    instance: OptimalInstance, assignment: Assignment, max_rounds: int = 100
) -> Tuple[Assignment, float]:
    """First-improvement moves and swaps until a local optimum."""
    current = dict(assignment)
    current_cost = evaluate_assignment(instance, current)
    for _ in range(max_rounds):
        improved = False
        # Single-user moves.
        for user in instance.user_ids:
            original = current[user]
            for node in instance.node_ids:
                if node == original:
                    continue
                current[user] = node
                cost = evaluate_assignment(instance, current)
                if cost + 1e-9 < current_cost:
                    current_cost = cost
                    improved = True
                    break
                current[user] = original
            if improved:
                break
        if improved:
            continue
        # Pairwise swaps.
        for a, b in itertools.combinations(instance.user_ids, 2):
            if current[a] == current[b]:
                continue
            current[a], current[b] = current[b], current[a]
            cost = evaluate_assignment(instance, current)
            if cost + 1e-9 < current_cost:
                current_cost = cost
                improved = True
                break
            current[a], current[b] = current[b], current[a]
        if not improved:
            break
    return current, current_cost


def solve_optimal(
    instance: OptimalInstance,
    *,
    exhaustive_limit: int = 300_000,
    restarts: int = 8,
    seed: int = 0,
) -> Tuple[Assignment, float]:
    """Solve for the (near-)optimal assignment.

    Returns:
        (assignment, average latency). Exact when ``m^n`` fits within
        ``exhaustive_limit``; otherwise the best of ``restarts``
        greedy + local-search runs over shuffled insertion orders.
    """
    n_users = len(instance.user_ids)
    n_nodes = len(instance.node_ids)
    space = n_nodes**n_users

    if space <= exhaustive_limit:
        best_assignment: Optional[Assignment] = None
        best_cost = float("inf")
        for combo in itertools.product(instance.node_ids, repeat=n_users):
            assignment = dict(zip(instance.user_ids, combo))
            cost = evaluate_assignment(instance, assignment)
            if cost < best_cost:
                best_cost = cost
                best_assignment = assignment
        assert best_assignment is not None
        return best_assignment, best_cost

    rng = random.Random(seed)
    best_assignment = None
    best_cost = float("inf")
    for restart in range(max(1, restarts)):
        order = list(instance.user_ids)
        if restart > 0:
            rng.shuffle(order)
        candidate = _greedy(instance, order)
        candidate, cost = _local_search(instance, candidate)
        if cost < best_cost:
            best_cost = cost
            best_assignment = candidate
    assert best_assignment is not None
    return best_assignment, best_cost
