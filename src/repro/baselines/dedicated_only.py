"""Dedicated-only edge infrastructure baseline.

"Dedicated-only edge refers to the existing edge infrastructure with
limited PoP and resource capacity. In our experiments, we use AWS Local
Zone with a static number of EC2 instances to emulate this category of
resources" (§V-B).

The baseline keeps the full client-centric algorithm but restricts the
manager's candidate pool to dedicated nodes — isolating the *resource
model* (scarce dedicated PoPs vs dense volunteers) from the *selection
algorithm*. Its weakness in Fig. 5 is pure capacity: with 15 users on 4
instances the pool "lacks hardware scaling flexibility upon increasing
workload".
"""

from __future__ import annotations

from repro.core.messages import NodeStatus
from repro.core.policies.global_policies import (
    GeoProximityFilter,
    GlobalSelectionPolicy,
)


def is_dedicated(status: NodeStatus) -> bool:
    """Predicate: heartbeat says the node is dedicated infrastructure."""
    return status.dedicated


def dedicated_only_policy(
    radius_km: float = 80.0, wide_radius_km: float = 400.0
) -> GlobalSelectionPolicy:
    """A global selection policy that only ever returns dedicated nodes.

    Install it as the system's ``global_policy`` to run the
    dedicated-only scenario with otherwise unchanged clients.
    """
    return GlobalSelectionPolicy(
        geo_filter=GeoProximityFilter(
            radius_km=radius_km, wide_radius_km=wide_radius_km
        ),
        node_predicate=is_dedicated,
    )
