"""Geo-proximity (locality-based) baseline.

"Users are assigned to their closest edge nodes geographically to offload
the computation. The latency between users and edge nodes is assumed to
be proportional to the distance, and resource capacity is not considered
to be the bottleneck" (§V-B).

The client asks the manager for the node nearest to it (great-circle
distance over heartbeat-reported coordinates) and attaches. It never
probes and never reconsiders unless its node fails — the two blind spots
Figs. 5-7 expose: actual network latency is *not* proportional to
distance in heterogeneous ISP environments, and ignoring capacity piles
users onto the closest node until it overloads.
"""

from __future__ import annotations

from typing import Optional

from repro.core.client import EdgeClient
from repro.obs.events import DiscoveryIssued, UncoveredFailure


class GeoProximityClient(EdgeClient):
    """Locality-based selection; reactive recovery on failure."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("proactive_connections", False)
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    def _begin_selection_round(self) -> None:
        """Attach to the geographically closest alive node (once)."""
        if self._stopped or self._round_in_progress:
            return
        if self.attached:
            return  # locality policy never re-selects while attached
        self._round_in_progress = True
        rtt = self.system.topology.rtt_ms(self.user_id, self.system.manager_id)
        self.system.sim.schedule(
            rtt, self._attach_closest, label=f"{self.user_id}.geo"
        )

    def _attach_closest(self) -> None:
        if self._stopped:
            return
        target = self._closest_node_id()
        if target is None:
            self._end_round()
            self.system.sim.schedule(500.0, self._begin_selection_round)
            return
        node = self.system.nodes.get(target)
        rtt = self.system.topology.rtt_ms(self.user_id, target)

        def deliver() -> None:
            if self._stopped:
                return
            if node is not None and node.alive and node.unexpected_join(
                self.user_id, self.controller.fps
            ):
                self.current_edge = target
                self._ensure_link(target, rtt)
                self._end_round()
                self._flush_backlog()
            else:
                self._end_round()
                self.system.sim.schedule(500.0, self._begin_selection_round)

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.geojoin")

    def _closest_node_id(self) -> Optional[str]:
        self.stats.discovery_queries += 1
        self.system.trace.emit(DiscoveryIssued(self.system.sim.now, self.user_id))
        statuses = self.system.manager.alive_statuses()
        predicate = self.system.manager.policy.node_predicate
        if predicate is not None:
            statuses = [s for s in statuses if predicate(s)]
        if not statuses:
            return None
        user_point = self.system.topology.endpoint(self.user_id).point
        closest = min(
            statuses,
            key=lambda s: (user_point.distance_km(s.point), s.node_id),
        )
        return closest.node_id

    # ------------------------------------------------------------------
    def on_edge_failure(self, node_id: str) -> None:
        """Reactive: lose the node, rediscover the (new) closest."""
        if self._stopped:
            return
        self.links.pop(node_id, None)
        if node_id != self.current_edge:
            return
        self.current_edge = None
        self.stats.uncovered_failures += 1
        self.system.trace.emit(UncoveredFailure(self.system.sim.now, self.user_id))
        self._begin_selection_round()
