"""Statically pinned client — the "closest cloud" baseline.

"The offloading performance on the closest AWS cloud is used as a
baseline reference in our real-world experiments" (§V-B): every user
offloads to the fixed cloud node, full stop. Also useful for pinning a
user to any specific node in unit tests and single-node studies (Fig. 3
probes each server with a pinned client).
"""

from __future__ import annotations

from repro.core.client import EdgeClient
from repro.obs.events import UncoveredFailure


class StaticPinClient(EdgeClient):
    """Offloads to one fixed node forever.

    Args:
        target_node_id: the pinned node (keyword-only, required).
    """

    def __init__(self, *args, target_node_id: str, **kwargs) -> None:
        kwargs.setdefault("proactive_connections", False)
        super().__init__(*args, **kwargs)
        self.target_node_id = target_node_id

    def _begin_selection_round(self) -> None:
        if self._stopped or self._round_in_progress or self.attached:
            return
        self._round_in_progress = True
        target = self.target_node_id
        node = self.system.nodes.get(target)
        rtt = self.system.topology.rtt_ms(self.user_id, target)

        def deliver() -> None:
            if self._stopped:
                return
            if node is not None and node.alive and node.unexpected_join(
                self.user_id, self.controller.fps
            ):
                self.current_edge = target
                self._ensure_link(target, rtt)
                self._end_round()
                self._flush_backlog()
            else:
                # Pinned target unavailable: retry until it returns.
                self._end_round()
                self.system.sim.schedule(1000.0, self._begin_selection_round)

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.pin")

    def on_edge_failure(self, node_id: str) -> None:
        if self._stopped:
            return
        self.links.pop(node_id, None)
        if node_id != self.current_edge:
            return
        self.current_edge = None
        self.stats.uncovered_failures += 1
        self.system.trace.emit(UncoveredFailure(self.system.sim.now, self.user_id))
        self._begin_selection_round()
