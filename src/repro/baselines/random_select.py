"""Uniform-random selection — a sanity-floor baseline for tests.

Not in the paper; included because every comparison suite needs a
know-nothing floor: any selection policy worth implementing must beat
attaching to a uniformly random alive node.
"""

from __future__ import annotations

from repro.core.client import EdgeClient
from repro.obs.events import DiscoveryIssued, UncoveredFailure


class RandomSelectClient(EdgeClient):
    """Attach to a uniformly random alive node; reactive recovery."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("proactive_connections", False)
        super().__init__(*args, **kwargs)
        self._choice_rng = self.system.streams.get(f"random-select.{self.user_id}")

    def _begin_selection_round(self) -> None:
        if self._stopped or self._round_in_progress or self.attached:
            return
        self._round_in_progress = True
        rtt = self.system.topology.rtt_ms(self.user_id, self.system.manager_id)
        self.system.sim.schedule(rtt, self._attach_random, label=f"{self.user_id}.rnd")

    def _attach_random(self) -> None:
        if self._stopped:
            return
        self.stats.discovery_queries += 1
        self.system.trace.emit(DiscoveryIssued(self.system.sim.now, self.user_id))
        statuses = self.system.manager.alive_statuses()
        predicate = self.system.manager.policy.node_predicate
        if predicate is not None:
            statuses = [s for s in statuses if predicate(s)]
        if not statuses:
            self._end_round()
            self.system.sim.schedule(500.0, self._begin_selection_round)
            return
        target = self._choice_rng.choice(sorted(s.node_id for s in statuses))
        node = self.system.nodes.get(target)
        rtt = self.system.topology.rtt_ms(self.user_id, target)

        def deliver() -> None:
            if self._stopped:
                return
            if node is not None and node.alive and node.unexpected_join(
                self.user_id, self.controller.fps
            ):
                self.current_edge = target
                self._ensure_link(target, rtt)
                self._end_round()
                self._flush_backlog()
            else:
                self._end_round()
                self.system.sim.schedule(200.0, self._begin_selection_round)

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.rndjoin")

    def on_edge_failure(self, node_id: str) -> None:
        if self._stopped:
            return
        self.links.pop(node_id, None)
        if node_id != self.current_edge:
            return
        self.current_edge = None
        self.stats.uncovered_failures += 1
        self.system.trace.emit(UncoveredFailure(self.system.sim.now, self.user_id))
        self._begin_selection_round()
