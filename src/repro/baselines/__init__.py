"""Evaluation baselines (§V-B) and the optimal-assignment solver.

Every baseline reuses :class:`~repro.core.client.EdgeClient`'s offloading
loop, adaptation and failure detection — only *selection* differs — so
latency comparisons isolate the selection policy:

- :class:`~repro.baselines.geo_proximity.GeoProximityClient` — "users
  are assigned to their closest edge nodes geographically"; no probing,
  no capacity awareness.
- :class:`~repro.baselines.resource_aware.ResourceAwareWRRClient` —
  manager-side smooth weighted round robin over resource availability.
- :class:`~repro.baselines.static_pin.StaticPinClient` — pinned to one
  node (the "closest cloud" baseline).
- :func:`~repro.baselines.dedicated_only.dedicated_only_policy` — a
  global-policy restriction to dedicated nodes (the "dedicated-only edge
  infrastructure" baseline keeps the client-centric algorithm but has
  only the Local Zone instances to choose from).
- :mod:`~repro.baselines.optimal` — the offline optimal Edge Assignment
  used as the reference line in Fig. 7 (exhaustive for tiny instances,
  greedy + local search with restarts beyond that).
- :class:`~repro.baselines.random_select.RandomSelectClient` — uniform
  random attach, a sanity floor for tests.
"""

from repro.baselines.dedicated_only import dedicated_only_policy
from repro.baselines.geo_proximity import GeoProximityClient
from repro.baselines.optimal import (
    Assignment,
    OptimalInstance,
    evaluate_assignment,
    solve_optimal,
)
from repro.baselines.random_select import RandomSelectClient
from repro.baselines.resource_aware import ResourceAwareWRRClient
from repro.baselines.static_pin import StaticPinClient

__all__ = [
    "GeoProximityClient",
    "ResourceAwareWRRClient",
    "StaticPinClient",
    "RandomSelectClient",
    "dedicated_only_policy",
    "OptimalInstance",
    "Assignment",
    "solve_optimal",
    "evaluate_assignment",
]
