"""Resource-aware weighted round robin baseline.

"This is a common edge selection and load balancing policy used in
fine-grained multi-edge environments. ... incoming user requests are
forwarded to the most available edge nodes in a weighted round robin
fashion. The weight applied for each edge node is determined by the
resource availability and utilization" (§V-B).

Users are assigned by the manager's smooth-WRR over availability scores.
The policy balances *compute* contention well, but "cannot identify the
network heterogeneity between users and nodes to tradeoff resource
availability and faster networking channel" — a user may land on an
available but badly-connected node, the gap Figs. 6-7 show.
"""

from __future__ import annotations

from repro.core.client import EdgeClient
from repro.core.messages import DiscoveryQuery
from repro.obs.events import DiscoveryIssued, UncoveredFailure


class ResourceAwareWRRClient(EdgeClient):
    """Manager-assigned WRR selection; reactive recovery on failure."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("proactive_connections", False)
        super().__init__(*args, **kwargs)

    # ------------------------------------------------------------------
    def _begin_selection_round(self) -> None:
        if self._stopped or self._round_in_progress:
            return
        if self.attached:
            return  # static assignment while the node lives
        self._round_in_progress = True
        rtt = self.system.topology.rtt_ms(self.user_id, self.system.manager_id)
        self.system.sim.schedule(rtt, self._attach_wrr, label=f"{self.user_id}.wrr")

    def _attach_wrr(self, exclude: tuple = ()) -> None:
        if self._stopped:
            return
        self.stats.discovery_queries += 1
        self.system.trace.emit(DiscoveryIssued(self.system.sim.now, self.user_id))
        endpoint = self.system.topology.endpoint(self.user_id)
        query = DiscoveryQuery(
            user_id=self.user_id,
            lat=endpoint.point.lat,
            lon=endpoint.point.lon,
            top_n=1,
            isp=endpoint.isp,
            exclude=exclude,
        )
        target = self.system.manager.wrr_assign(query)
        if target is None:
            self._end_round()
            self.system.sim.schedule(500.0, self._begin_selection_round)
            return
        node = self.system.nodes.get(target)
        rtt = self.system.topology.rtt_ms(self.user_id, target)

        def deliver() -> None:
            if self._stopped:
                return
            if node is not None and node.alive and node.unexpected_join(
                self.user_id, self.controller.fps
            ):
                self.current_edge = target
                self._ensure_link(target, rtt)
                self._end_round()
                self._flush_backlog()
            else:
                # Assignment raced a failure: ask again, excluding it.
                self._attach_wrr(exclude=exclude + (target,))

        self.system.sim.schedule(rtt, deliver, label=f"{self.user_id}.wrrjoin")

    # ------------------------------------------------------------------
    def on_edge_failure(self, node_id: str) -> None:
        if self._stopped:
            return
        self.links.pop(node_id, None)
        if node_id != self.current_edge:
            return
        self.current_edge = None
        self.stats.uncovered_failures += 1
        self.system.trace.emit(UncoveredFailure(self.system.sim.now, self.user_id))
        self._begin_selection_round()
