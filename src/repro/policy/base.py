"""The selection-policy contract: pure, sans-IO candidate ranking.

A :class:`SelectionPolicy` is the pluggable brain the
:class:`~repro.protocol.selection.SelectionMachine` consults twice per
selection round: once to **rank** the probed candidates (with a score
per candidate, so dwell/hysteresis and the ``policy_decision`` trace
event speak the same currency as the ranking) and once to **order the
backups** adopted from the ranked tail. Between rounds the machine
feeds the policy typed **observations** — answered probes, probe
timeouts, node failures, failover outcomes, degraded discoveries,
candidate churn, attachments — which is how history-aware policies
accumulate the per-node state the paper's memoryless LO/GO ranking
lacks.

Contract:

- **Pure and sans-IO.** A policy never reads a clock (every entry point
  carries ``now``), never touches a socket or the simulator, and draws
  randomness only from a seed handed to :meth:`SelectionPolicy.bind_seed`
  — the same discipline as the protocol machines, so sim/live parity
  and trace replay carry over.
- **Scores are "predicted milliseconds, lower is better".** The machine
  compares the current edge's score against the best candidate's score
  for hysteresis, so scores must be on the latency scale the switch
  margins (``switch_penalty_ms``) are expressed in.
- **Deterministic tie-break.** :meth:`SelectionPolicy.rank` orders by
  ``(score, node_id)`` so equal scores cannot make two runs diverge.
- **Picklable.** Per-node policy state rides inside the machine's
  picklable state (sweep resumability, cloned scenarios); policies must
  therefore hold only plain data — no lambdas, no open handles.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.probing import ProbeOutcome

__all__ = [
    "AttachmentObserved",
    "CandidateChurn",
    "DegradedDiscovery",
    "FailoverObserved",
    "NodeFailureObserved",
    "PolicyObservation",
    "ProbeObserved",
    "ProbeTimeout",
    "Ranking",
    "RankingContext",
    "SelectionPolicy",
]


# ----------------------------------------------------------------------
# Typed observations (machine -> policy)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProbeObserved:
    """One candidate answered its probe (the raw measurement, before any
    stay-substitution the ranking applies)."""

    now: float
    outcome: ProbeOutcome


@dataclass(frozen=True)
class ProbeTimeout:
    """A probed candidate never answered — dead, partitioned, or gray
    enough to drop probes."""

    now: float
    node_id: str


@dataclass(frozen=True)
class NodeFailureObserved:
    """A broken connection revealed a node failure. ``serving`` is True
    when it was the client's current edge (a user-visible outage)."""

    now: float
    node_id: str
    serving: bool


@dataclass(frozen=True)
class FailoverObserved:
    """One step of the failover walk: the backup accepted or was dead too."""

    now: float
    node_id: str
    accepted: bool


@dataclass(frozen=True)
class DegradedDiscovery:
    """The Central Manager was unreachable; the round fell back to
    cached candidates (a manager-side reliability signal)."""

    now: float
    reason: str


@dataclass(frozen=True)
class CandidateChurn:
    """The discovery answer changed: ``appeared`` entered the candidate
    list, ``vanished`` silently left it (node died, moved away, or was
    outcompeted — either way a stability signal)."""

    now: float
    appeared: Tuple[str, ...]
    vanished: Tuple[str, ...]


@dataclass(frozen=True)
class AttachmentObserved:
    """The client attached to a node (``via`` is ``"join"`` or
    ``"failover"``)."""

    now: float
    node_id: str
    via: str


PolicyObservation = Union[
    ProbeObserved,
    ProbeTimeout,
    NodeFailureObserved,
    FailoverObserved,
    DegradedDiscovery,
    CandidateChurn,
    AttachmentObserved,
]


# ----------------------------------------------------------------------
# Ranking input/output
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RankingContext:
    """What the machine knows at ranking time."""

    now: float
    current_edge: Optional[str] = None


@dataclass(frozen=True)
class Ranking:
    """A ranking verdict: candidates best-first plus the score that put
    each one there (``node_id -> predicted ms``). Candidates a policy
    filtered out (QoS) appear in neither."""

    ranked: Tuple[ProbeOutcome, ...]
    scores: Mapping[str, float] = field(default_factory=dict)

    def score_of(self, node_id: Optional[str]) -> Optional[float]:
        if node_id is None:
            return None
        return self.scores.get(node_id)


# ----------------------------------------------------------------------
# The policy base class
# ----------------------------------------------------------------------
class SelectionPolicy:
    """Base class for local selection policies.

    Subclasses typically override only :meth:`score` (and
    :meth:`observe` when history-aware); :meth:`rank` then provides the
    deterministic ``(score, node_id)`` ordering. Policies that reorder
    the adopted backup list override :meth:`order_backups`.
    """

    #: Registry key and the label stamped into ``policy_decision`` events.
    name: ClassVar[str] = "base"

    # -- ranking -------------------------------------------------------
    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        """Predicted cost of joining ``outcome.node_id`` (ms, lower wins)."""
        raise NotImplementedError

    def eligible(
        self, outcomes: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> List[ProbeOutcome]:
        """Admission filter applied before scoring (QoS cut; default: all)."""
        return list(outcomes)

    def rank(
        self, outcomes: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> Ranking:
        """Rank candidates best-first with deterministic tie-break."""
        scored = sorted(
            ((self.score(o, ctx), o.node_id, o) for o in self.eligible(outcomes, ctx)),
            key=lambda item: (item[0], item[1]),
        )
        return Ranking(
            ranked=tuple(o for _, _, o in scored),
            scores={node_id: s for s, node_id, _ in scored},
        )

    def order_backups(
        self, ranked_rest: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> Tuple[ProbeOutcome, ...]:
        """Order the candidates adopted as backups (best failover target
        first). Default: keep the ranking order — bit-identical to the
        pre-policy machine."""
        return tuple(ranked_rest)

    # -- state ---------------------------------------------------------
    def observe(self, observation: PolicyObservation) -> None:
        """Fold one typed observation into per-node state (default: none)."""

    def bind_seed(self, seed: int) -> None:
        """Hand the policy its private random universe (default: unused).

        Called once by the driver before the first round; policies that
        use randomness must derive it *only* from this seed so equal
        seeds replay identical decisions.
        """

    def params(self) -> Dict[str, object]:
        """The tunables this instance runs with (for docs/CLI listing)."""
        return {}

    def clone(self) -> "SelectionPolicy":
        """A fresh, state-independent copy (per-client instantiation)."""
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({args})"
