"""Pluggable client selection policies (``repro.policy``).

The subsystem behind the :class:`~repro.protocol.selection.SelectionMachine`'s
ranking and backup-ordering decisions. See :mod:`repro.policy.base` for
the contract, :mod:`repro.policy.baselines` for the paper's LO/GO/QoS
extracted bit-identically, :mod:`repro.policy.predictive` for the
history-aware policies, and :mod:`repro.policy.registry` for resolving
string specs (``SystemConfig.policy_spec``, sweeps, the CLI).

Quickstart::

    from repro.policy import build_policy, get, policy_names

    policy_names()                 # ['churn', 'ewma', 'go', 'lo', 'reliability']
    get("reliability")             # the factory class
    build_policy("ewma", params={"alpha": 0.5})   # a configured instance
"""

from repro.policy.base import (
    AttachmentObserved,
    CandidateChurn,
    DegradedDiscovery,
    FailoverObserved,
    NodeFailureObserved,
    PolicyObservation,
    ProbeObserved,
    ProbeTimeout,
    Ranking,
    RankingContext,
    SelectionPolicy,
)
from repro.policy.baselines import (
    CallableRankingPolicy,
    GlobalOverheadPolicy,
    LocalOverheadPolicy,
    QosGatedPolicy,
    as_policy,
)
from repro.policy.predictive import (
    ChurnAwarePolicy,
    EwmaRttPolicy,
    ReliabilityPolicy,
)
from repro.policy.registry import (
    PolicySpec,
    build_policy,
    describe,
    get,
    make,
    policy_names,
    register,
)

__all__ = [
    "AttachmentObserved",
    "CallableRankingPolicy",
    "CandidateChurn",
    "ChurnAwarePolicy",
    "DegradedDiscovery",
    "EwmaRttPolicy",
    "FailoverObserved",
    "GlobalOverheadPolicy",
    "LocalOverheadPolicy",
    "NodeFailureObserved",
    "PolicyObservation",
    "PolicySpec",
    "ProbeObserved",
    "ProbeTimeout",
    "QosGatedPolicy",
    "Ranking",
    "RankingContext",
    "ReliabilityPolicy",
    "SelectionPolicy",
    "as_policy",
    "build_policy",
    "describe",
    "get",
    "make",
    "policy_names",
    "register",
]
