"""String-keyed policy registry.

Sweeps, the CLI and ``SystemConfig.policy_spec`` name policies by
string (``"reliability"``); this registry maps those names to factories
and builds configured instances. Built-ins register at import time so
worker processes resolve the same names (spawn-safe, like the sweep
experiment registry).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Union

from repro.policy.base import SelectionPolicy
from repro.policy.baselines import (
    GlobalOverheadPolicy,
    LocalOverheadPolicy,
    QosGatedPolicy,
    RankingCallable,
    as_policy,
)
from repro.policy.predictive import (
    ChurnAwarePolicy,
    EwmaRttPolicy,
    ReliabilityPolicy,
)

__all__ = [
    "PolicyFactory",
    "PolicySpec",
    "build_policy",
    "get",
    "make",
    "policy_names",
    "register",
]

#: Anything :func:`build_policy` accepts: a registry name, a policy
#: instance (used as a prototype — cloned, never shared), or a legacy
#: ranking callable.
PolicySpec = Union[str, SelectionPolicy, RankingCallable]

PolicyFactory = Callable[..., SelectionPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {}
_DESCRIPTIONS: Dict[str, str] = {}


def register(
    name: str,
    factory: PolicyFactory,
    *,
    description: str = "",
    replace: bool = False,
) -> None:
    """Add a policy factory under ``name``.

    Re-registering is refused unless ``replace=True`` — silently
    shadowing a built-in would change what a ``policy_spec`` means.
    """
    if name in _REGISTRY and not replace:
        raise ValueError(f"policy already registered: {name!r}")
    _REGISTRY[name] = factory
    _DESCRIPTIONS[name] = description


def get(name: str) -> PolicyFactory:
    """The factory registered under ``name`` (``repro.policy.get("reliability")``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown selection policy {name!r}; registered: {known}"
        ) from None


def make(name: str, **params: object) -> SelectionPolicy:
    """A fresh configured instance of the policy named ``name``."""
    return get(name)(**params)


def describe(name: str) -> str:
    """The one-line description registered with ``name``."""
    get(name)
    return _DESCRIPTIONS.get(name, "")


def policy_names() -> List[str]:
    return sorted(_REGISTRY)


def build_policy(
    spec: PolicySpec,
    *,
    params: Optional[Dict[str, object]] = None,
    qos_latency_ms: Optional[float] = None,
    seed: Optional[int] = None,
) -> SelectionPolicy:
    """Resolve any policy spec into a ready per-client instance.

    - A **name** builds a fresh instance from the registry with
      ``params`` as constructor keywords.
    - A **policy object** is treated as a prototype and deep-copied, so
      per-node state is never shared between clients.
    - A **legacy ranking callable** is wrapped in the adapter that
      preserves its exact historical ranking and hysteresis behaviour.

    ``qos_latency_ms`` wraps the result in QoS admission (the
    ``SystemConfig.qos_latency_ms`` semantics); ``seed`` hands the
    policy its private random universe.
    """
    policy: SelectionPolicy
    if isinstance(spec, str):
        policy = make(spec, **(params or {}))
    elif isinstance(spec, SelectionPolicy):
        if params:
            raise ValueError(
                "params only apply to registry names; configure the "
                "policy instance directly instead"
            )
        policy = copy.deepcopy(spec)
    elif callable(spec):
        if params:
            raise ValueError("params only apply to registry names")
        policy = as_policy(spec)
    else:
        raise TypeError(f"not a policy spec: {spec!r}")
    if qos_latency_ms is not None:
        policy = QosGatedPolicy(policy, qos_latency_ms)
    if seed is not None:
        policy.bind_seed(seed)
    return policy


# ----------------------------------------------------------------------
# Built-ins
# ----------------------------------------------------------------------
register(
    "lo",
    LocalOverheadPolicy,
    description="paper baseline: rank by local overhead LO_j (selfish latency)",
)
register(
    "go",
    GlobalOverheadPolicy,
    description="paper default: rank by global overhead GO_j (average-optimizing)",
)
register(
    "ewma",
    EwmaRttPolicy,
    description="Holt EWMA/trend RTT forecast: rank on predicted RTT-at-join",
)
register(
    "reliability",
    ReliabilityPolicy,
    description="GO with decaying multiplicative penalty for failures/gray behaviour",
)
register(
    "churn",
    ChurnAwarePolicy,
    description="GO ranking with stability-ordered backups (churn-aware failover)",
)
