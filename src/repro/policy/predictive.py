"""Predictive, history-aware selection policies.

Three policies the memoryless LO/GO baselines cannot express, built on
the observation feed of :mod:`repro.policy.base`:

- :class:`EwmaRttPolicy` — Holt double-exponential smoothing over each
  node's probed RTT; ranks on the *forecast* RTT one probing period
  ahead instead of the last sample, so a node whose latency is trending
  up loses its seat before the trend bites.
- :class:`ReliabilityPolicy` — multiplicative penalty that grows with
  recent failures, probe timeouts and gray behaviour (a node whose
  what-if projection suddenly jumps after looking cheap — the stale
  gray-cache signature) and decays exponentially, so repeat offenders
  stay demoted while a single old incident is eventually forgiven.
- :class:`ChurnAwarePolicy` — ranks like GO but orders the *backup*
  list by observed stability, so the first failover target is the
  backup least likely to be gone when it is finally needed.

All three are deterministic given their observation sequence; the
reliability policy additionally accepts a seed (its optional
exploration jitter draws only from it), so equal seeds replay equal
decisions — the property the hypothesis tests pin.
"""

from __future__ import annotations

from typing import ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.core.probing import ProbeOutcome
from repro.policy.base import (
    CandidateChurn,
    FailoverObserved,
    NodeFailureObserved,
    PolicyObservation,
    ProbeObserved,
    ProbeTimeout,
    RankingContext,
    SelectionPolicy,
)

__all__ = ["ChurnAwarePolicy", "EwmaRttPolicy", "ReliabilityPolicy"]


class _DecayedMarks:
    """Per-node exponentially decayed incident mass.

    ``add(node, now, weight)`` deposits a mark; ``value(node, now)``
    reads the remaining mass after half-life decay. Lazy decay (stored
    as ``(mass, stamped_at)``) keeps updates O(1) and the state plain
    picklable data.
    """

    def __init__(self, half_life_ms: float) -> None:
        if half_life_ms <= 0:
            raise ValueError(f"half_life_ms must be positive: {half_life_ms}")
        self.half_life_ms = half_life_ms
        self._marks: Dict[str, Tuple[float, float]] = {}

    def _decayed(self, node_id: str, now: float) -> float:
        entry = self._marks.get(node_id)
        if entry is None:
            return 0.0
        mass, stamped_at = entry
        elapsed = max(0.0, now - stamped_at)
        return mass * 0.5 ** (elapsed / self.half_life_ms)

    def add(self, node_id: str, now: float, weight: float) -> None:
        self._marks[node_id] = (self._decayed(node_id, now) + weight, now)

    def value(self, node_id: str, now: float) -> float:
        return self._decayed(node_id, now)


# ----------------------------------------------------------------------
# EWMA / trend RTT forecasting
# ----------------------------------------------------------------------
class EwmaRttPolicy(SelectionPolicy):
    """Rank on forecast RTT-at-join instead of the last probe sample.

    Holt smoothing per node: level ``l`` tracks the RTT, trend ``b``
    its drift; the score is ``max(0, l + horizon * b) + what_if`` — the
    RTT we expect *by the time the join lands and frames flow*, plus
    the node's processing projection. A node never probed before scores
    exactly its measured LO, so the policy degrades to the LO baseline
    until history accumulates.

    Args:
        alpha: level smoothing factor in (0, 1].
        beta: trend smoothing factor in [0, 1].
        horizon: forecast steps ahead (in probing periods).
    """

    name: ClassVar[str] = "ewma"

    def __init__(
        self, alpha: float = 0.4, beta: float = 0.2, horizon: float = 1.0
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1]: {beta}")
        self.alpha = alpha
        self.beta = beta
        self.horizon = horizon
        self._level: Dict[str, float] = {}
        self._trend: Dict[str, float] = {}

    def observe(self, observation: PolicyObservation) -> None:
        if not isinstance(observation, ProbeObserved):
            return
        node_id = observation.outcome.node_id
        x = observation.outcome.d_prop_ms
        level = self._level.get(node_id)
        if level is None:
            self._level[node_id] = x
            self._trend[node_id] = 0.0
            return
        trend = self._trend[node_id]
        new_level = self.alpha * x + (1.0 - self.alpha) * (level + trend)
        self._trend[node_id] = (
            self.beta * (new_level - level) + (1.0 - self.beta) * trend
        )
        self._level[node_id] = new_level

    def forecast_rtt_ms(self, node_id: str, fallback: float) -> float:
        """The forecast RTT for one node (``fallback`` when unseen)."""
        level = self._level.get(node_id)
        if level is None:
            return fallback
        return max(0.0, level + self.horizon * self._trend[node_id])

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        rtt = self.forecast_rtt_ms(outcome.node_id, outcome.d_prop_ms)
        return rtt + outcome.d_proc_ms

    def params(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "beta": self.beta,
            "horizon": self.horizon,
        }


# ----------------------------------------------------------------------
# Reliability-discounted ranking
# ----------------------------------------------------------------------
class ReliabilityPolicy(SelectionPolicy):
    """GO ranking with a multiplicative unreliability penalty.

    Score: ``GO_j * (1 + min(max_penalty, suspicion_j))`` where
    ``suspicion_j`` is the node's decayed incident mass:

    - a **node failure** deposits ``failure_weight`` (a crash observed
      through a broken connection, or a backup found dead during the
      failover walk);
    - a **probe timeout** deposits ``timeout_weight`` (the node was
      expected to answer and did not);
    - **gray behaviour** deposits ``gray_weight`` — detected when a
      node's *per-capita* what-if projection (what-if divided by the
      projected user count) jumps above ``gray_ratio`` times its
      smoothed history: a gray node's slowdown multiplies its base
      service rate, while an honest population pile-up raises the raw
      what-if without moving the per-capita figure.

    Marks decay with ``half_life_ms``, so the policy forgives: a node
    that failed once long ago converges back to plain GO, while a
    repeat offender keeps a standing penalty — exactly the behaviour
    that beats LO under repeated ``node_crash`` churn, where LO re-joins
    the fastest node the moment it restarts and eats the next crash.

    Deterministic: given the same observation sequence (and seed, when
    ``explore_epsilon > 0``) every ranking is identical. The optional
    exploration draws from a private ``random.Random(seed)`` only.
    """

    name: ClassVar[str] = "reliability"

    def __init__(
        self,
        failure_weight: float = 3.0,
        timeout_weight: float = 1.0,
        gray_weight: float = 1.5,
        gray_ratio: float = 1.8,
        half_life_ms: float = 60_000.0,
        max_penalty: float = 8.0,
        explore_epsilon: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if gray_ratio <= 1.0:
            raise ValueError(f"gray_ratio must exceed 1: {gray_ratio}")
        if not 0.0 <= explore_epsilon < 1.0:
            raise ValueError(
                f"explore_epsilon must be in [0, 1): {explore_epsilon}"
            )
        self.failure_weight = failure_weight
        self.timeout_weight = timeout_weight
        self.gray_weight = gray_weight
        self.gray_ratio = gray_ratio
        self.max_penalty = max_penalty
        self.explore_epsilon = explore_epsilon
        self._marks = _DecayedMarks(half_life_ms)
        #: Smoothed what-if per node (gray-jump reference).
        self._what_if_ewma: Dict[str, float] = {}
        self._seed = seed
        self._rng_state: Optional[object] = None

    # -- state ---------------------------------------------------------
    def bind_seed(self, seed: int) -> None:
        if self._seed is None:
            self._seed = seed

    def _rng_draw(self) -> float:
        import random

        rng = random.Random()
        if self._rng_state is None:
            rng.seed(self._seed if self._seed is not None else 0)
        else:
            rng.setstate(self._rng_state)  # type: ignore[arg-type]
        value = rng.random()
        self._rng_state = rng.getstate()
        return value

    def observe(self, observation: PolicyObservation) -> None:
        if isinstance(observation, NodeFailureObserved):
            self._marks.add(
                observation.node_id, observation.now, self.failure_weight
            )
        elif isinstance(observation, FailoverObserved):
            if not observation.accepted:
                self._marks.add(
                    observation.node_id, observation.now, self.failure_weight
                )
        elif isinstance(observation, ProbeTimeout):
            self._marks.add(
                observation.node_id, observation.now, self.timeout_weight
            )
        elif isinstance(observation, ProbeObserved):
            node_id = observation.outcome.node_id
            # Per-capita what-if: a gray slowdown multiplies the node's
            # base service rate, while a population pile-up raises the
            # raw what-if legitimately. Dividing by the projected user
            # count isolates the former from the latter.
            what_if = observation.outcome.d_proc_ms / (
                observation.outcome.attached_users + 1.0
            )
            smoothed = self._what_if_ewma.get(node_id)
            if smoothed is not None and smoothed > 0.0:
                if what_if > self.gray_ratio * smoothed:
                    # The cheap projection was a lie: gray behaviour.
                    self._marks.add(
                        node_id, observation.now, self.gray_weight
                    )
            if smoothed is None:
                self._what_if_ewma[node_id] = what_if
            else:
                self._what_if_ewma[node_id] = 0.7 * smoothed + 0.3 * what_if

    # -- ranking -------------------------------------------------------
    def suspicion(self, node_id: str, now: float) -> float:
        """The decayed incident mass currently held against a node."""
        return self._marks.value(node_id, now)

    def penalty_factor(self, node_id: str, now: float) -> float:
        factor = 1.0 + min(self.max_penalty, self.suspicion(node_id, now))
        if self.explore_epsilon > 0.0 and factor > 1.0:
            if self._rng_draw() < self.explore_epsilon:
                # Seeded exploration: occasionally halve the penalty so
                # a recovered node can win back traffic sooner.
                factor = 1.0 + (factor - 1.0) / 2.0
        return factor

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return outcome.global_overhead_ms * self.penalty_factor(
            outcome.node_id, ctx.now
        )

    def params(self) -> Dict[str, object]:
        return {
            "failure_weight": self.failure_weight,
            "timeout_weight": self.timeout_weight,
            "gray_weight": self.gray_weight,
            "gray_ratio": self.gray_ratio,
            "half_life_ms": self._marks.half_life_ms,
            "max_penalty": self.max_penalty,
            "explore_epsilon": self.explore_epsilon,
            "seed": self._seed,
        }


# ----------------------------------------------------------------------
# Churn-aware backup ordering
# ----------------------------------------------------------------------
class ChurnAwarePolicy(SelectionPolicy):
    """GO ranking with stability-ordered backups.

    The primary choice stays the paper's GO optimum, but the adopted
    backup list — the failover walk order — is re-sorted by each
    node's decayed *instability* mass: vanishing from the candidate
    list, failing, or timing out probes all count against a node.
    Among equally stable backups the ranking order is preserved, so
    with no history the policy is bit-identical to GO.
    """

    name: ClassVar[str] = "churn"

    def __init__(
        self,
        vanish_weight: float = 1.0,
        failure_weight: float = 2.0,
        timeout_weight: float = 0.5,
        half_life_ms: float = 60_000.0,
    ) -> None:
        self.vanish_weight = vanish_weight
        self.failure_weight = failure_weight
        self.timeout_weight = timeout_weight
        self._marks = _DecayedMarks(half_life_ms)

    def observe(self, observation: PolicyObservation) -> None:
        if isinstance(observation, CandidateChurn):
            for node_id in observation.vanished:
                self._marks.add(node_id, observation.now, self.vanish_weight)
        elif isinstance(observation, NodeFailureObserved):
            self._marks.add(
                observation.node_id, observation.now, self.failure_weight
            )
        elif isinstance(observation, FailoverObserved):
            if not observation.accepted:
                self._marks.add(
                    observation.node_id, observation.now, self.failure_weight
                )
        elif isinstance(observation, ProbeTimeout):
            self._marks.add(
                observation.node_id, observation.now, self.timeout_weight
            )

    def instability(self, node_id: str, now: float) -> float:
        """The decayed instability mass currently held against a node."""
        return self._marks.value(node_id, now)

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return outcome.global_overhead_ms

    def order_backups(
        self, ranked_rest: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> Tuple[ProbeOutcome, ...]:
        indexed: List[Tuple[float, int, ProbeOutcome]] = [
            (self.instability(o.node_id, ctx.now), i, o)
            for i, o in enumerate(ranked_rest)
        ]
        indexed.sort(key=lambda item: (item[0], item[1]))
        return tuple(o for _, _, o in indexed)

    def params(self) -> Dict[str, object]:
        return {
            "vanish_weight": self.vanish_weight,
            "failure_weight": self.failure_weight,
            "timeout_weight": self.timeout_weight,
            "half_life_ms": self._marks.half_life_ms,
        }
