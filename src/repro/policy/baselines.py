"""The paper's baseline policies, extracted behind the policy API.

These reproduce :mod:`repro.core.policies.local_policies` exactly —
same scores, same ``(score, node_id)`` tie-break, same QoS admission
filter — so swapping the machine's ranking callable for a policy object
is bit-identical (pinned by the golden-trace parity test). They carry
no state: :meth:`~repro.policy.base.SelectionPolicy.observe` is a
no-op, which also keeps the hot path free when history is not wanted.
"""

from __future__ import annotations

from typing import Callable, ClassVar, Dict, List, Sequence, Tuple

from repro.core.probing import ProbeOutcome
from repro.policy.base import RankingContext, Ranking, SelectionPolicy

__all__ = [
    "CallableRankingPolicy",
    "GlobalOverheadPolicy",
    "LocalOverheadPolicy",
    "QosGatedPolicy",
    "RankingCallable",
    "as_policy",
]

#: The legacy ranking-callable shape (``repro.core.policies``).
RankingCallable = Callable[[Sequence[ProbeOutcome]], List[ProbeOutcome]]


class LocalOverheadPolicy(SelectionPolicy):
    """Rank by ``LO_j`` ascending — selfish best latency for this user."""

    name: ClassVar[str] = "lo"

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return outcome.local_overhead_ms


class GlobalOverheadPolicy(SelectionPolicy):
    """Rank by ``GO_j`` ascending — the paper's average-optimizing
    default (LO plus the degradation the join inflicts on the
    candidate's existing users)."""

    name: ClassVar[str] = "go"

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return outcome.global_overhead_ms


class QosGatedPolicy(SelectionPolicy):
    """QoS admission on top of any base policy.

    Candidates whose ``LO`` exceeds the bound are filtered before the
    base policy scores the survivors — "first filter out edge candidates
    whose LO violates QoS requirements and then select the node with
    lowest GO". An empty ranking signals the client that no candidate
    can satisfy the requirement.
    """

    name: ClassVar[str] = "qos"

    def __init__(self, base: SelectionPolicy, qos_latency_ms: float) -> None:
        if qos_latency_ms <= 0:
            raise ValueError(f"qos_latency_ms must be positive: {qos_latency_ms}")
        self.base = base
        self.qos_latency_ms = qos_latency_ms

    def eligible(
        self, outcomes: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> List[ProbeOutcome]:
        survivors = [
            o for o in outcomes if o.local_overhead_ms <= self.qos_latency_ms
        ]
        return self.base.eligible(survivors, ctx)

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return self.base.score(outcome, ctx)

    def order_backups(
        self, ranked_rest: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> Tuple[ProbeOutcome, ...]:
        return self.base.order_backups(ranked_rest, ctx)

    def observe(self, observation: object) -> None:
        self.base.observe(observation)  # type: ignore[arg-type]

    def bind_seed(self, seed: int) -> None:
        self.base.bind_seed(seed)

    def params(self) -> Dict[str, object]:
        return {"base": self.base.name, "qos_latency_ms": self.qos_latency_ms}


class CallableRankingPolicy(SelectionPolicy):
    """Adapter wrapping a legacy ranking callable.

    The callable keeps full authority over the order (it may implement
    any custom sort or filter); scores are reported as each candidate's
    ``LO`` — exactly the quantity the pre-policy machine compared in its
    dwell/hysteresis check, so wrapped legacy policies keep their exact
    historical switching behaviour.
    """

    name: ClassVar[str] = "callable"

    def __init__(self, fn: RankingCallable) -> None:
        self.fn = fn

    def rank(
        self, outcomes: Sequence[ProbeOutcome], ctx: RankingContext
    ) -> Ranking:
        ranked = tuple(self.fn(outcomes))
        return Ranking(
            ranked=ranked,
            scores={o.node_id: o.local_overhead_ms for o in ranked},
        )

    def score(self, outcome: ProbeOutcome, ctx: RankingContext) -> float:
        return outcome.local_overhead_ms

    def params(self) -> Dict[str, object]:
        return {"fn": getattr(self.fn, "__name__", repr(self.fn))}


def as_policy(
    policy: "SelectionPolicy | RankingCallable",
) -> SelectionPolicy:
    """Coerce a policy object or legacy ranking callable to a policy."""
    if isinstance(policy, SelectionPolicy):
        return policy
    if callable(policy):
        return CallableRankingPolicy(policy)
    raise TypeError(
        f"not a SelectionPolicy or ranking callable: {policy!r}"
    )
