"""Wire protocol for the live runtime: newline-delimited JSON frames.

Every frame is one JSON object on one line::

    {"op": "<operation>", "payload": {...}}\\n

and every request gets exactly one response frame. Operations mirror
the simulation's method calls one-to-one (``discover``, ``heartbeat``,
``rtt_probe``, ``process_probe``, ``join``, ``unexpected_join``,
``leave``, ``frame``, ``status``). Dataclass payloads go through
:func:`repro.core.messages.to_wire` / ``from_wire``.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional

#: Maximum accepted frame size — prevents a garbage peer from ballooning
#: memory with an unterminated line.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(Exception):
    """Malformed frame or unexpected operation."""


def encode_frame(op: str, payload: Optional[Dict[str, Any]] = None) -> bytes:
    """Encode one protocol frame."""
    return (json.dumps({"op": op, "payload": payload or {}}) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Decode one protocol frame.

    Raises:
        ProtocolError: on malformed JSON or a missing ``op`` field.
    """
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {line[:80]!r}") from exc
    if not isinstance(data, dict) or "op" not in data:
        raise ProtocolError(f"frame missing op: {data!r}")
    data.setdefault("payload", {})
    return data


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF.

    Raises:
        ProtocolError: on oversized or malformed frames.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return None
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(line)} bytes")
    return decode_frame(line)


async def request(
    host: str,
    port: int,
    op: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 5.0,
) -> Dict[str, Any]:
    """One-shot request/response over a fresh connection.

    Raises:
        ProtocolError / OSError / asyncio.TimeoutError on failure — the
        caller decides whether a dead peer is an error or just a dead
        volunteer node.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(encode_frame(op, payload))
        await writer.drain()
        reply = await asyncio.wait_for(read_frame(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    if reply is None:
        raise ProtocolError(f"peer closed connection during {op!r}")
    return reply["payload"]


class PersistentConnection:
    """A kept-alive request/response channel to one peer.

    This is what "proactively established connections" are at the
    transport level: the TCP handshake is paid once, and a failover
    request rides an already-open socket.
    """

    def __init__(self, host: str, port: int, timeout: float = 5.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), self.timeout
        )

    async def request(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request on the standing connection.

        Raises:
            ProtocolError: when the peer vanished mid-exchange.
        """
        if not self.connected:
            await self.connect()
        assert self._writer is not None and self._reader is not None
        self._writer.write(encode_frame(op, payload))
        await self._writer.drain()
        reply = await asyncio.wait_for(read_frame(self._reader), self.timeout)
        if reply is None:
            await self.close()
            raise ProtocolError(f"peer closed connection during {op!r}")
        return reply["payload"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None
