"""Wire protocol for the live runtime: newline-delimited JSON frames.

Every frame is one JSON object on one line::

    {"op": "<operation>", "payload": {...}}\\n

and every request gets exactly one response frame. Operations mirror
the simulation's method calls one-to-one (``discover``, ``heartbeat``,
``rtt_probe``, ``process_probe``, ``join``, ``unexpected_join``,
``leave``, ``frame``, ``status``). Dataclass payloads go through
:func:`repro.core.messages.to_wire` / ``from_wire``.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Dict, Optional

#: Maximum accepted frame size — prevents a garbage peer from ballooning
#: memory with an unterminated line.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(Exception):
    """Malformed frame or unexpected operation."""


class EdgeUnreachableError(ProtocolError):
    """A peer is currently unreachable and the caller should fail fast.

    Raised instead of a socket error when a
    :class:`PersistentConnection` exhausts its reconnect attempts, or
    when its :class:`CircuitBreaker` is open. Subclasses
    :class:`ProtocolError`, so every existing ``except`` that treats a
    dead peer as "just a dead volunteer" keeps working — the point is
    that it arrives in microseconds, not after another 5 s timeout.
    """


def encode_frame(op: str, payload: Optional[Dict[str, Any]] = None) -> bytes:
    """Encode one protocol frame."""
    return (json.dumps({"op": op, "payload": payload or {}}) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Decode one protocol frame.

    Raises:
        ProtocolError: on malformed JSON or a missing ``op`` field.
    """
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame: {line[:80]!r}") from exc
    if not isinstance(data, dict) or "op" not in data:
        raise ProtocolError(f"frame missing op: {data!r}")
    data.setdefault("payload", {})
    return data


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF.

    Raises:
        ProtocolError: on oversized or malformed frames.
    """
    try:
        line = await reader.readline()
    except (ConnectionResetError, BrokenPipeError):
        return None
    if not line:
        return None
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(line)} bytes")
    return decode_frame(line)


async def request(
    host: str,
    port: int,
    op: str,
    payload: Optional[Dict[str, Any]] = None,
    timeout: float = 5.0,
) -> Dict[str, Any]:
    """One-shot request/response over a fresh connection.

    Raises:
        ProtocolError / OSError / asyncio.TimeoutError on failure — the
        caller decides whether a dead peer is an error or just a dead
        volunteer node.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        writer.write(encode_frame(op, payload))
        await writer.drain()
        reply = await asyncio.wait_for(read_frame(reader), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
    if reply is None:
        raise ProtocolError(f"peer closed connection during {op!r}")
    return reply["payload"]


# ----------------------------------------------------------------------
# Retry with a total-latency budget
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry: capped attempts AND a total wall-clock budget.

    Backoff is *decorrelated jitter*: each sleep is drawn uniformly
    from ``[base_delay_s, 3 x previous_sleep]``, capped at
    ``max_delay_s`` — it spreads a thundering herd like full jitter but
    still grows geometrically in expectation. A retry is attempted only
    if the budget has room for its backoff sleep; whatever error ended
    the last attempt propagates once either bound trips.
    """

    max_attempts: int = 3
    budget_s: float = 2.0
    base_delay_s: float = 0.05
    max_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.budget_s <= 0 or self.base_delay_s <= 0 or self.max_delay_s <= 0:
            raise ValueError("budget and delays must be positive")

    def next_delay(self, previous_s: float, rng: random.Random) -> float:
        return min(
            self.max_delay_s, rng.uniform(self.base_delay_s, max(previous_s, self.base_delay_s) * 3.0)
        )


async def call_with_retry(
    attempt: Callable[[], Awaitable[Dict[str, Any]]],
    policy: RetryPolicy,
    *,
    rng: Optional[random.Random] = None,
    on_retry: Optional[Callable[[int, float], None]] = None,
    clock: Callable[[], float] = time.monotonic,
    sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
) -> Dict[str, Any]:
    """Run ``attempt`` under ``policy``; retries on transport errors.

    ``on_retry(attempt_number, delay_s)`` fires before each backoff
    sleep — the live client uses it to emit
    :class:`~repro.obs.events.RetryScheduled` trace events.
    :class:`EdgeUnreachableError` is **not** retried: the breaker (or
    reconnect cap) has already decided the peer is down, and hammering
    it would defeat the fail-fast.
    """
    rng = rng if rng is not None else random.Random()
    deadline = clock() + policy.budget_s
    delay = policy.base_delay_s
    attempts = 0
    while True:
        attempts += 1
        try:
            return await attempt()
        except EdgeUnreachableError:
            raise
        except (OSError, ProtocolError, asyncio.TimeoutError):
            if attempts >= policy.max_attempts:
                raise
            delay = policy.next_delay(delay, rng)
            if clock() + delay >= deadline:
                raise
            if on_retry is not None:
                on_retry(attempts, delay)
            await sleep(delay)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    - **closed**: requests flow; ``failure_threshold`` *consecutive*
      failures trip it open.
    - **open**: :meth:`allow` is False — callers fail fast with
      :class:`EdgeUnreachableError` instead of paying another timeout.
    - **half-open**: after ``reset_timeout_s`` one trial request is let
      through; success closes the breaker, failure re-opens it (and
      restarts the reset clock).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 2.0,
        *,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1: {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self.on_transition = on_transition
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._trial_in_flight = False

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open on read."""
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._set_state("half_open")
        return self._state

    def _set_state(self, new: str) -> None:
        old = self._state
        if old == new:
            return
        self._state = new
        if new != "open":
            self._trial_in_flight = False
        if self.on_transition is not None:
            self.on_transition(old, new)

    def allow(self) -> bool:
        """May a request proceed right now?

        In half-open state only one trial request is admitted at a time;
        concurrent callers keep failing fast until it resolves.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half_open" and not self._trial_in_flight:
            self._trial_in_flight = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._set_state("closed")

    def record_failure(self) -> None:
        self._trial_in_flight = False
        if self._state == "half_open":
            self._opened_at = self._clock()
            self._set_state("open")
            return
        self._failures += 1
        if self._failures >= self.failure_threshold and self._state == "closed":
            self._opened_at = self._clock()
            self._set_state("open")


class PersistentConnection:
    """A kept-alive request/response channel to one peer.

    This is what "proactively established connections" are at the
    transport level: the TCP handshake is paid once, and a failover
    request rides an already-open socket.

    Robustness (opt-in, both default-compatible):

    - ``max_reconnect_attempts`` bounds *consecutive* failed
      (re)connects; once exhausted, further requests raise
      :class:`EdgeUnreachableError` immediately instead of paying a
      connect timeout each time. Any successful connect resets the
      count.
    - an attached :class:`CircuitBreaker` is consulted before every
      request and fed every outcome, so a dead peer costs
      ``failure_threshold`` timeouts total — not one per request.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        *,
        max_reconnect_attempts: int = 3,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        if max_reconnect_attempts < 1:
            raise ValueError(
                f"max_reconnect_attempts must be >= 1: {max_reconnect_attempts}"
            )
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_reconnect_attempts = max_reconnect_attempts
        self.breaker = breaker
        self._connect_failures = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    @property
    def connected(self) -> bool:
        return self._writer is not None and not self._writer.is_closing()

    async def connect(self) -> None:
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        except (OSError, asyncio.TimeoutError):
            self._connect_failures += 1
            raise
        self._connect_failures = 0

    async def request(
        self, op: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Send one request on the standing connection.

        Raises:
            EdgeUnreachableError: breaker open or reconnect cap hit —
                the peer is considered down; fail fast.
            ProtocolError: when the peer vanished mid-exchange.
        """
        if self.breaker is not None and not self.breaker.allow():
            raise EdgeUnreachableError(
                f"{self.host}:{self.port} breaker open, refusing {op!r}"
            )
        try:
            if not self.connected:
                if self._connect_failures >= self.max_reconnect_attempts:
                    raise EdgeUnreachableError(
                        f"{self.host}:{self.port} unreachable after "
                        f"{self._connect_failures} connect attempts"
                    )
                await self.connect()
            assert self._writer is not None and self._reader is not None
            self._writer.write(encode_frame(op, payload))
            await self._writer.drain()
            reply = await asyncio.wait_for(read_frame(self._reader), self.timeout)
            if reply is None:
                await self.close()
                raise ProtocolError(f"peer closed connection during {op!r}")
        except (OSError, ProtocolError, asyncio.TimeoutError):
            if self.breaker is not None:
                self.breaker.record_failure()
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return reply["payload"]

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None
