"""The live Central Manager: registry + discovery over TCP."""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus, from_wire, to_wire
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.obs.events import PopulationChanged
from repro.obs.tracer import Tracer
from repro.runtime import protocol


class ManagerServer:
    """Asyncio TCP server implementing the Central Manager role.

    Operations:
        - ``heartbeat`` — payload: wire-encoded :class:`NodeStatus` plus
          the node's serving address; refreshes the registry.
        - ``discover`` — payload: wire-encoded :class:`DiscoveryQuery`;
          replies with a :class:`CandidateList` and an address book for
          the candidates.
        - ``status`` — introspection for tests/operators.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[GlobalSelectionPolicy] = None,
        heartbeat_timeout_s: float = 3.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy or GlobalSelectionPolicy()
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self._registry: Dict[str, NodeStatus] = {}
        self._addresses: Dict[str, tuple] = {}
        self._received_at: Dict[str, float] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.queries_served = 0
        self.heartbeats_received = 0

    async def start(self) -> None:
        """Bind and start serving; resolves the actual port when 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _alive_statuses(self) -> list:
        now = time.monotonic()
        stale = [
            node_id
            for node_id, at in self._received_at.items()
            if now - at > self.heartbeat_timeout_s
        ]
        for node_id in stale:
            self._registry.pop(node_id, None)
            self._addresses.pop(node_id, None)
            self._received_at.pop(node_id, None)
        if stale:
            self.tracer.emit(
                PopulationChanged(self.tracer.now(), len(self._registry))
            )
        return list(self._registry.values())

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                reply = self._dispatch(frame)
                writer.write(protocol.encode_frame("reply", reply))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels in-flight handlers; ending the
            # task cleanly avoids spurious loop-callback logging.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _dispatch(self, frame: dict) -> dict:
        op = frame["op"]
        payload = frame["payload"]
        if op == "heartbeat":
            status = from_wire(payload["status"])
            is_new = status.node_id not in self._registry
            self._registry[status.node_id] = status
            self._addresses[status.node_id] = (payload["host"], payload["port"])
            self._received_at[status.node_id] = time.monotonic()
            self.heartbeats_received += 1
            if is_new:
                self.tracer.emit(
                    PopulationChanged(self.tracer.now(), len(self._registry))
                )
            return {"ok": True}
        if op == "discover":
            query: DiscoveryQuery = from_wire(payload["query"])
            node_ids, widened = self.policy.select(query, self._alive_statuses())
            self.queries_served += 1
            candidates = CandidateList(
                user_id=query.user_id, node_ids=tuple(node_ids), widened=widened
            )
            return {
                "ok": True,
                "candidates": to_wire(candidates),
                "addresses": {
                    node_id: list(self._addresses[node_id])
                    for node_id in node_ids
                    if node_id in self._addresses
                },
            }
        if op == "status":
            return {
                "ok": True,
                "nodes": sorted(self._registry),
                "queries_served": self.queries_served,
                "heartbeats_received": self.heartbeats_received,
            }
        return {"ok": False, "error": f"unknown op: {op!r}"}
