"""The live Central Manager — asyncio driver over the protocol core.

Registry, expiry, geo-filter and TopN ranking all live in
:class:`repro.protocol.global_select.GlobalSelectionMachine` (shared
with the simulated :class:`repro.core.manager.CentralManager`); this
module only owns the TCP surface and the address book — live clients
need ``(host, port)`` pairs for the candidates, which the sim does not.

Expiry stamps on this backend are ``time.monotonic()`` seconds (the sim
uses virtual milliseconds); the machine never interprets stamp units, it
only compares them against ``heartbeat_timeout``.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional

from repro.core.messages import CandidateList, DiscoveryQuery, NodeStatus, from_wire, to_wire
from repro.core.policies.global_policies import GlobalSelectionPolicy
from repro.obs.events import PopulationChanged
from repro.obs.tracer import Tracer
from repro.protocol.effects import (
    Effect,
    NodeExpired,
    NodeOnline,
    ReplyCandidates,
    ReplyPartialCandidates,
)
from repro.protocol.events import (
    DiscoveryRequested,
    HeartbeatReceived,
    PartialDiscoveryRequested,
    PruneTick,
)
from repro.protocol.global_select import GlobalSelectionMachine, RegistrySnapshot
from repro.runtime import protocol


class ManagerServer:
    """Asyncio TCP server implementing the Central Manager role.

    Operations:
        - ``heartbeat`` — payload: wire-encoded :class:`NodeStatus` plus
          the node's serving address; refreshes the registry.
        - ``discover`` — payload: wire-encoded :class:`DiscoveryQuery`;
          replies with a :class:`CandidateList` and an address book for
          the candidates.
        - ``discover_partial`` — one fixed-radius phase of a routed
          discovery (the sharded control plane's RouterServer owns the
          widening decision globally; this shard just answers its
          slice): replies with the exact in-radius count plus the
          per-shard TopN statuses.
        - ``snapshot`` / ``restore`` — serialize / install the
          deduplicated registry snapshot (replication and standby
          re-seeding; stamps are host-monotonic seconds, so snapshots
          only transfer between processes sharing a clock — the
          loopback cluster's case).
        - ``status`` — introspection for tests/operators.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        policy: Optional[GlobalSelectionPolicy] = None,
        heartbeat_timeout_s: float = 3.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        #: The sans-IO Central Manager core this driver executes.
        self._machine = GlobalSelectionMachine(
            policy or GlobalSelectionPolicy(),
            heartbeat_timeout=heartbeat_timeout_s,
        )
        self._addresses: Dict[str, tuple] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.queries_served = 0
        self.heartbeats_received = 0

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver for tests/operators.
    # ------------------------------------------------------------------
    @property
    def policy(self) -> GlobalSelectionPolicy:
        return self._machine.policy

    @policy.setter
    def policy(self, policy: GlobalSelectionPolicy) -> None:
        self._machine.policy = policy

    @property
    def _registry(self) -> Dict[str, NodeStatus]:
        return self._machine.registry

    async def start(self) -> None:
        """Bind and start serving; resolves the actual port when 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    def _run_effects(self, effects: List[Effect]) -> Optional[Effect]:
        """Execute registry effects in order; return the reply (if any).

        Node arrivals and expiries both surface as a single
        :class:`PopulationChanged` trace per batch (matching what an
        operator watching the registry size would observe).
        """
        reply: Optional[Effect] = None
        population_changed = False
        for effect in effects:
            if isinstance(effect, NodeOnline):
                if effect.new:
                    population_changed = True
            elif isinstance(effect, NodeExpired):
                self._addresses.pop(effect.node_id, None)
                population_changed = True
            elif isinstance(effect, (ReplyCandidates, ReplyPartialCandidates)):
                reply = effect
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")
        if population_changed:
            self.tracer.emit(
                PopulationChanged(self.tracer.now(), len(self._machine.registry))
            )
        return reply

    def _alive_statuses(self) -> List[NodeStatus]:
        """Prune stale entries, then snapshot the registry."""
        self._run_effects(self._machine.handle(PruneTick(time.monotonic())))
        return list(self._machine.registry.values())

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await protocol.read_frame(reader)
                if frame is None:
                    break
                reply = self._dispatch(frame)
                writer.write(protocol.encode_frame("reply", reply))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels in-flight handlers; ending the
            # task cleanly avoids spurious loop-callback logging.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (  # pragma: no cover - teardown races
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                # CancelledError: server teardown raced the hang-up —
                # the socket is gone either way, so end the task clean.
                pass

    def _dispatch(self, frame: dict) -> dict:
        op = frame["op"]
        payload = frame["payload"]
        if op == "heartbeat":
            status: NodeStatus = from_wire(payload["status"])
            self.heartbeats_received += 1
            self._run_effects(
                self._machine.handle(
                    HeartbeatReceived(stamp=time.monotonic(), status=status)
                )
            )
            self._addresses[status.node_id] = (payload["host"], payload["port"])
            return {"ok": True}
        if op == "discover":
            query: DiscoveryQuery = from_wire(payload["query"])
            self.queries_served += 1
            reply = self._run_effects(
                self._machine.handle(
                    DiscoveryRequested(
                        now=self.tracer.now(), stamp=time.monotonic(), query=query
                    )
                )
            )
            assert isinstance(reply, ReplyCandidates)
            candidates = CandidateList(
                user_id=query.user_id,
                node_ids=reply.node_ids,
                widened=reply.widened,
            )
            return {
                "ok": True,
                "candidates": to_wire(candidates),
                "addresses": {
                    node_id: list(self._addresses[node_id])
                    for node_id in reply.node_ids
                    if node_id in self._addresses
                },
            }
        if op == "discover_partial":
            query = from_wire(payload["query"])
            assert isinstance(query, DiscoveryQuery)
            self.queries_served += 1
            reply = self._run_effects(
                self._machine.handle(
                    PartialDiscoveryRequested(
                        now=self.tracer.now(),
                        stamp=time.monotonic(),
                        query=query,
                        radius_km=float(payload["radius_km"]),
                    )
                )
            )
            assert isinstance(reply, ReplyPartialCandidates)
            return {
                "ok": True,
                "count": reply.count,
                "statuses": [to_wire(s) for s in reply.statuses],
                "addresses": {
                    s.node_id: list(self._addresses[s.node_id])
                    for s in reply.statuses
                    if s.node_id in self._addresses
                },
            }
        if op == "snapshot":
            snapshot = self._machine.snapshot_state()
            return {
                "ok": True,
                "statuses": [to_wire(s) for s in snapshot.statuses],
                "stamps": snapshot.stamps,
                "wrr": snapshot.wrr_current,
                "addresses": {
                    node_id: list(addr)
                    for node_id, addr in self._addresses.items()
                },
            }
        if op == "restore":
            statuses = tuple(from_wire(s) for s in payload["statuses"])
            self._machine.restore_state(
                RegistrySnapshot(
                    statuses=statuses,
                    stamps={k: float(v) for k, v in payload["stamps"].items()},
                    wrr_current={k: float(v) for k, v in payload["wrr"].items()},
                )
            )
            self._addresses = {
                node_id: tuple(addr)
                for node_id, addr in payload.get("addresses", {}).items()
            }
            return {"ok": True, "entries": len(statuses)}
        if op == "status":
            return {
                "ok": True,
                "nodes": sorted(self._machine.registry),
                "queries_served": self.queries_served,
                "heartbeats_received": self.heartbeats_received,
            }
        return {"ok": False, "error": f"unknown op: {op!r}"}
