"""Spin up a complete live cluster on localhost."""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER, MetroArea
from repro.nodes.hardware import HardwareProfile
from repro.obs.events import NodeRestart
from repro.obs.tracer import Tracer
from repro.runtime.client_runtime import LiveClient
from repro.runtime.edge_server import LiveEdgeServer
from repro.runtime.manager_server import ManagerServer


class LocalCluster:
    """Manager + edge fleet + clients, all on 127.0.0.1.

    Usage::

        cluster = LocalCluster(profiles, n_clients=3)
        await cluster.start()
        try:
            for client in cluster.clients:
                await client.select_and_join()
                await client.offload_frame()
        finally:
            await cluster.stop()
    """

    def __init__(
        self,
        profiles: Sequence[HardwareProfile],
        *,
        n_clients: int = 1,
        seed: int = 0,
        time_scale: float = 0.05,
        heartbeat_period_s: float = 0.2,
        top_n: int = 3,
        tracer: Optional[Tracer] = None,
        monitor_period_s: Optional[float] = None,
        attachment_lease_s: Optional[float] = None,
    ) -> None:
        if not profiles:
            raise ValueError("need at least one edge profile")
        self._rng = random.Random(seed)
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        metro = MetroArea(center=MSP_CENTER, radius_km=16.0, rng=self._rng)
        self.manager = ManagerServer(tracer=self.tracer)
        self.edges: List[LiveEdgeServer] = []
        self._edge_specs: List[Tuple[HardwareProfile, GeoPoint]] = [
            (profile, metro.sample()) for profile in profiles
        ]
        self._client_points: List[GeoPoint] = [
            metro.sample() for _ in range(n_clients)
        ]
        self.clients: List[LiveClient] = []
        self.time_scale = time_scale
        self.heartbeat_period_s = heartbeat_period_s
        self.top_n = top_n
        self.monitor_period_s = monitor_period_s
        self.attachment_lease_s = attachment_lease_s

    async def start(self) -> None:
        """Start the manager, all edges, and build (unattached) clients."""
        await self.manager.start()
        for index, (profile, point) in enumerate(self._edge_specs):
            edge = self._build_edge(
                f"edge-{index + 1:02d}-{profile.name}", profile, point
            )
            await edge.start()
            self.edges.append(edge)
        # one heartbeat round so discovery has a registry to work with
        await asyncio.sleep(self.heartbeat_period_s * 1.5)
        for index, point in enumerate(self._client_points):
            self.clients.append(
                LiveClient(
                    f"user-{index + 1:02d}",
                    point,
                    self.manager.host,
                    self.manager.port,
                    top_n=self.top_n,
                    tracer=self.tracer,
                )
            )

    async def stop(self) -> None:
        for client in self.clients:
            await client.close()
        for edge in self.edges:
            await edge.stop()
        await self.manager.stop()

    def _build_edge(
        self, node_id: str, profile: HardwareProfile, point: GeoPoint
    ) -> LiveEdgeServer:
        return LiveEdgeServer(
            node_id,
            profile,
            point,
            manager_host=self.manager.host,
            manager_port=self.manager.port,
            heartbeat_period_s=self.heartbeat_period_s,
            time_scale=self.time_scale,
            tracer=self.tracer,
            monitor_period_s=self.monitor_period_s,
            attachment_lease_s=self.attachment_lease_s,
        )

    def edge_by_id(self, node_id: str) -> LiveEdgeServer:
        for edge in self.edges:
            if edge.node_id == node_id:
                return edge
        raise KeyError(f"unknown edge: {node_id!r}")

    async def kill_edge(self, node_id: str) -> None:
        """Hard-stop one edge (volunteer leaves without notification)."""
        edge = self.edge_by_id(node_id)
        await edge.stop()

    async def restart_edge(self, node_id: str) -> LiveEdgeServer:
        """Restart a killed edge under the *same* node id.

        A brand-new :class:`LiveEdgeServer` process on the same
        hardware/placement, listening on a fresh port: seqNum restarts
        at 0, the what-if cache re-primes, and the first heartbeat
        re-registers the new address at the manager — no pre-crash
        state survives the identity.
        """
        index = next(
            (i for i, e in enumerate(self.edges) if e.node_id == node_id), None
        )
        if index is None:
            raise KeyError(f"unknown edge: {node_id!r}")
        old = self.edges[index]
        if not old._dead:
            raise ValueError(f"edge {node_id!r} is still running; kill it first")
        profile, point = self._edge_specs[index]
        edge = self._build_edge(node_id, profile, point)
        await edge.start()
        self.edges[index] = edge
        self.tracer.emit(NodeRestart(self.tracer.now(), node_id))
        return edge

    async def stop_manager(self) -> None:
        """Take the Central Manager offline (outage injection).

        Edges keep heartbeating into the void with backoff; attached
        clients keep offloading frames — only discovery goes dark.
        """
        await self.manager.stop()

    async def restart_manager(self) -> None:
        """Bring the manager back on its original port; heartbeats
        repopulate the registry within one period."""
        await self.manager.start()

    def manager_address(self) -> Dict[str, object]:
        return {"host": self.manager.host, "port": self.manager.port}

    def statuses(self) -> Optional[dict]:
        """Convenience snapshot for demos."""
        return {
            "manager": self.manager_address(),
            "edges": [e.node_id for e in self.edges],
            "clients": [c.user_id for c in self.clients],
        }
