"""Live runtime: the same protocol over real TCP sockets.

The simulation backend answers the paper's *performance* questions; this
package demonstrates that the protocol itself — discovery, probing with
``seqNum`` synchronization, join/leave, what-if caching, heartbeats,
failover — runs unchanged over a real transport. It is a faithful port,
not a second implementation: messages are the dataclasses of
:mod:`repro.core.messages` serialized with ``to_wire``/``from_wire`` as
newline-delimited JSON.

- :mod:`~repro.runtime.protocol` — framing + request/response helpers.
- :class:`~repro.runtime.manager_server.ManagerServer` — Central
  Manager: registry, heartbeat ingestion, discovery queries.
- :class:`~repro.runtime.edge_server.LiveEdgeServer` — an edge node:
  Table I APIs plus a ``frame`` endpoint whose processing time is a
  scaled-down sleep derived from the node's hardware profile.
- :class:`~repro.runtime.client_runtime.LiveClient` — probing loop,
  local selection and frame offloading against real servers.
- :class:`~repro.runtime.launcher.LocalCluster` — spin up a manager +
  edge fleet + clients on localhost ports for demos and tests.

Everything binds to 127.0.0.1 and is intended for local experimentation.
"""

from repro.runtime.client_runtime import LiveClient
from repro.runtime.edge_server import LiveEdgeServer
from repro.runtime.launcher import LocalCluster
from repro.runtime.manager_server import ManagerServer

__all__ = ["ManagerServer", "LiveEdgeServer", "LiveClient", "LocalCluster"]
