"""A live edge node — asyncio driver over the protocol core.

Processing is a real ``asyncio`` sleep of the profile's per-frame time
scaled by ``time_scale`` (default 0.1: a 30 ms frame sleeps 3 ms, so
tests run fast while contention behaviour — a worker pool of size
``parallelism`` with a bounded queue — stays real).

The what-if cache rules, the test-workload triggers and the ``seqNum``
join protocol are NOT re-implemented here: this driver executes the
same :class:`repro.protocol.admission.AdmissionMachine` as the
simulated :class:`repro.core.edge_server.EdgeServer`, so the cache
semantics are identical by construction — including the EWMA blending
of successive what-if values, which this backend previously skipped.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.messages import NodeStatus, ProbeReply, to_wire
from repro.geo import geohash as gh
from repro.geo.point import GeoPoint
from repro.nodes.hardware import HardwareProfile
from repro.nodes.processing import analytic_sojourn_ms
from repro.obs.events import (
    AttachmentExpired,
    CacheMiss,
    HeartbeatMissed,
    NodeFail,
    TestWorkloadInvoked,
)
from repro.obs.tracer import Tracer
from repro.protocol.admission import AdmissionConfig, AdmissionMachine
from repro.protocol.effects import (
    Effect,
    EmitTrace,
    ReplyJoin,
    ReplyProbe,
    ScheduleTestWorkload,
)
from repro.protocol.events import (
    JoinRequested,
    LeaveRequested,
    MonitorSample,
    ProbeRequested,
    TestWorkloadCompleted,
    UnexpectedJoinRequested,
)
from repro.runtime import protocol

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.injector import FaultInjector


class LiveEdgeServer:
    """One volunteer/dedicated edge node on a localhost port."""

    def __init__(
        self,
        node_id: str,
        profile: HardwareProfile,
        point: GeoPoint,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        manager_host: Optional[str] = None,
        manager_port: Optional[int] = None,
        heartbeat_period_s: float = 1.0,
        max_heartbeat_backoff_s: float = 8.0,
        time_scale: float = 0.1,
        standard_fps: float = 20.0,
        dedicated: bool = False,
        tracer: Optional[Tracer] = None,
        monitor_period_s: Optional[float] = None,
        attachment_lease_s: Optional[float] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.node_id = node_id
        self.profile = profile
        self.point = point
        self.host = host
        self.port = port
        self.manager_host = manager_host
        self.manager_port = manager_port
        self.heartbeat_period_s = heartbeat_period_s
        self.max_heartbeat_backoff_s = max_heartbeat_backoff_s
        self.time_scale = time_scale
        self.standard_fps = standard_fps
        self.dedicated = dedicated
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.heartbeat_failures = 0
        self._backoff_rng = random.Random(node_id)
        #: Performance-monitor cadence (trigger type 3). None keeps the
        #: monitor off — the default, matching the original live node.
        self.monitor_period_s = monitor_period_s
        #: Admission lease: evict users whose frames stop arriving for
        #: this long (cleanup for a Leave() lost to a partition, or
        #: skipped by a client that believed this node dead). None — the
        #: default — disables expiry.
        self.attachment_lease_s = attachment_lease_s
        self._last_seen: Dict[str, float] = {}
        #: Gray-node dial: frame service runs ``slowdown``× slower while
        #: heartbeats (and every control-plane reply) stay crisp.
        self.slowdown = 1.0
        #: Optional chaos hooks (wired by the chaos controller): an
        #: injector plus a plan-time clock, consulted before heartbeats.
        self.faults: Optional["FaultInjector"] = None
        self.fault_clock: Callable[[], float] = lambda: 0.0

        #: The sans-IO admission core this driver executes (shared with
        #: the simulated backend).
        self._machine = AdmissionMachine(
            node_id,
            AdmissionConfig(standard_fps=standard_fps),
            initial_ms=profile.base_frame_ms,
            project=lambda fps, slowdown: analytic_sojourn_ms(
                self.profile, fps, slowdown_factor=slowdown
            ),
            detail_guard=lambda: self.tracer.enabled,
        )
        self.test_workload_invocations = 0
        self.frames_processed = 0
        self._completions: List[Tuple[float, float]] = []  # (monotonic, sojourn_ms)

        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore = asyncio.Semaphore(profile.parallelism)
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._monitor_task: Optional[asyncio.Task] = None
        self._lease_task: Optional[asyncio.Task] = None
        self._queue_depth = 0
        self.max_queue_depth = 64
        self._dead = False
        self._open_writers: set = set()

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver for tests/status.
    # ------------------------------------------------------------------
    @property
    def seq_num(self) -> int:
        return self._machine.seq_num

    @seq_num.setter
    def seq_num(self, value: int) -> None:
        self._machine.seq_num = value

    @property
    def attached(self) -> Dict[str, float]:
        return self._machine.attached

    @attached.setter
    def attached(self, value: Dict[str, float]) -> None:
        self._machine.attached = value

    @property
    def what_if_ms(self) -> float:
        return self._machine.what_if_ms

    @what_if_ms.setter
    def what_if_ms(self, value: float) -> None:
        self._machine.what_if_ms = value

    @property
    def stay_ms(self) -> float:
        return self._machine.stay_ms

    @stay_ms.setter
    def stay_ms(self, value: float) -> None:
        self._machine.stay_ms = value

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.tracer.enabled:
            self.tracer.emit(CacheMiss(self.tracer.now(), self.node_id, "prime"))
        await self._invoke_test_workload()
        if self.manager_host is not None and self.manager_port is not None:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())
        if self.monitor_period_s is not None:
            self._monitor_task = asyncio.ensure_future(self._monitor_loop())
        if self.attachment_lease_s is not None:
            self._lease_task = asyncio.ensure_future(self._lease_loop())

    async def stop(self) -> None:
        """Hard stop: the node vanishes, including live connections.

        A crashing volunteer does not finish in-flight conversations —
        open sockets are severed so attached clients observe a broken
        connection (their failure-detection signal).
        """
        if not self._dead:
            self.tracer.emit(NodeFail(self.tracer.now(), self.node_id))
        self._dead = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            self._monitor_task = None
        if self._lease_task is not None:
            self._lease_task.cancel()
            self._lease_task = None
        for writer in list(self._open_writers):
            writer.close()
        self._open_writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Effect execution
    # ------------------------------------------------------------------
    def _run_effects(self, effects: List[Effect]) -> Optional[Effect]:
        """Execute side effects in order; return the reply effect (if any)."""
        reply: Optional[Effect] = None
        for effect in effects:
            if isinstance(effect, EmitTrace):
                self.tracer.emit(effect.event)
            elif isinstance(effect, ScheduleTestWorkload):
                if effect.delayed:
                    asyncio.ensure_future(self._delayed_test_workload())
                else:
                    asyncio.ensure_future(self._invoke_test_workload())
            elif isinstance(effect, (ReplyProbe, ReplyJoin)):
                reply = effect
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")
        return reply

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    async def _process_frame(
        self, synthetic: bool = False
    ) -> Optional[Tuple[float, float, float]]:
        """Run one frame through the worker pool.

        Returns ``(sojourn_ms, wait_wall_ms, service_wall_ms)`` or None
        when the queue sheds the frame. ``sojourn_ms`` is the unscaled
        application time (wall sojourn divided by ``time_scale``);
        the wait/service components are *wall-clock* ms — they are what
        the frame reply carries so clients can decompose their measured
        end-to-end latency into queue/process/rtt phases exactly.
        """
        if self._queue_depth >= self.max_queue_depth:
            return None
        self._queue_depth += 1
        arrival = time.monotonic()
        service_start = arrival
        try:
            async with self._semaphore:
                service_start = time.monotonic()
                await asyncio.sleep(
                    self.profile.base_frame_ms / 1000.0 * self.time_scale
                    * self.slowdown
                )
        finally:
            self._queue_depth -= 1
        done = time.monotonic()
        wait_wall_ms = (service_start - arrival) * 1000.0
        service_wall_ms = (done - service_start) * 1000.0
        sojourn_ms = (done - arrival) / self.time_scale * 1000.0
        if not synthetic:
            self.frames_processed += 1
            self._completions.append((done, sojourn_ms))
            if len(self._completions) > 64:
                del self._completions[:-64]
        return sojourn_ms, wait_wall_ms, service_wall_ms

    def _recent_mean_sojourn_ms(self) -> Optional[float]:
        cutoff = time.monotonic() - 3.0
        recent = [s for t, s in self._completions if t >= cutoff]
        if not recent:
            return None
        return sum(recent) / len(recent)

    async def _invoke_test_workload(self) -> None:
        """Run the "what-if" synthetic frame through the real worker
        pool, then let the machine fold the measured sojourn into the
        cache (EWMA blend with the demand projection)."""
        self.test_workload_invocations += 1
        result = await self._process_frame(synthetic=True)
        if result is None:
            return
        self.tracer.emit(TestWorkloadInvoked(self.tracer.now(), self.node_id))
        self._run_effects(
            self._machine.handle(
                TestWorkloadCompleted(
                    self.tracer.now(), result[0], slowdown_factor=self.slowdown
                )
            )
        )

    async def _delayed_test_workload(self) -> None:
        """Join-triggered invocation, delayed by ~2x a common RTT
        (scaled), so it observes the new user's traffic."""
        await asyncio.sleep(0.04 * self.time_scale * 10)
        await self._invoke_test_workload()

    def set_slowdown(self, factor: float) -> None:
        """Dial frame-service speed (gray-node injection / host load).

        Only the data plane slows down — heartbeats and probe replies
        stay instant, which is exactly what makes a gray node invisible
        to liveness checks and visible only to the performance
        monitor's drift trigger.
        """
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1.0: {factor}")
        self.slowdown = factor

    async def _monitor_loop(self) -> None:
        """Performance monitor (trigger type 3) on the wall clock.

        Mirrors the simulated node's periodic
        :class:`~repro.protocol.events.MonitorSample` feed: the machine
        compares the recently *measured* sojourns against its cached
        baseline and refreshes the what-if cache on noticeable drift —
        the only detection path that catches a gray node.
        """
        assert self.monitor_period_s is not None
        while not self._dead:
            await asyncio.sleep(self.monitor_period_s)
            if self._dead:
                return
            self._run_effects(
                self._machine.handle(
                    MonitorSample(
                        self.tracer.now(),
                        measured_ms=self._recent_mean_sojourn_ms(),
                        idle_floor_ms=self.profile.base_frame_ms * self.slowdown,
                    )
                )
            )

    async def _lease_loop(self) -> None:
        """Evict attached users whose frames stopped arriving.

        The live twin of the simulated node's attachment lease: a
        ``Leave()`` lost to a partition (or skipped by a client that
        presumed this node dead) would otherwise strand admission state
        forever. Expiry feeds the machine a plain
        :class:`~repro.protocol.events.LeaveRequested`, so the usual
        trigger-type-2 cache refresh happens.
        """
        assert self.attachment_lease_s is not None
        lease_s = self.attachment_lease_s
        while not self._dead:
            await asyncio.sleep(lease_s / 2.0)
            if self._dead:
                return
            now = time.monotonic()
            for user_id in list(self._machine.attached):
                idle_s = now - self._last_seen.get(user_id, now)
                if idle_s < lease_s:
                    continue
                self._last_seen.pop(user_id, None)
                self.tracer.emit(
                    AttachmentExpired(
                        self.tracer.now(), self.node_id, user_id, idle_s * 1000.0
                    )
                )
                self._run_effects(
                    self._machine.handle(
                        LeaveRequested(self.tracer.now(), user_id)
                    )
                )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def status(self) -> NodeStatus:
        return NodeStatus(
            node_id=self.node_id,
            lat=self.point.lat,
            lon=self.point.lon,
            geohash=gh.encode(self.point.lat, self.point.lon, 9),
            cores=self.profile.cores,
            capacity_fps=self.profile.capacity_fps,
            attached_users=len(self.attached),
            utilization=min(1.0, self._queue_depth / self.profile.parallelism),
            dedicated=self.dedicated,
        )

    async def _heartbeat_loop(self) -> None:
        """Heartbeat with bounded exponential backoff on failure.

        A flat retry-next-period loop hammers an unreachable manager at
        full rate forever (and every node in lockstep). Consecutive
        failures instead double the delay up to ``max_heartbeat_backoff_s``
        with +/-50% jitter so a recovering manager is not hit by a
        synchronized thundering herd; one success resets the cadence.
        """
        assert self.manager_host is not None and self.manager_port is not None
        while True:
            delay_s = self.heartbeat_period_s
            try:
                if self.faults is not None:
                    verdict = self.faults.decide(
                        self.node_id, "central-manager", "heartbeat",
                        self.fault_clock(),
                    )
                    if not verdict.deliver:
                        raise asyncio.TimeoutError(
                            f"injected {verdict.kind} ({verdict.rule_id})"
                        )
                await protocol.request(
                    self.manager_host,
                    self.manager_port,
                    "heartbeat",
                    {
                        "status": to_wire(self.status()),
                        "host": self.host,
                        "port": self.port,
                    },
                )
                self.heartbeat_failures = 0
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                self.heartbeat_failures += 1
                backoff = min(
                    self.heartbeat_period_s * (2.0 ** min(self.heartbeat_failures, 6)),
                    self.max_heartbeat_backoff_s,
                )
                delay_s = backoff * (0.5 + self._backoff_rng.random())
                self.tracer.emit(
                    HeartbeatMissed(
                        self.tracer.now(),
                        self.node_id,
                        self.heartbeat_failures,
                        delay_s * 1000.0,
                    )
                )
            await asyncio.sleep(delay_s)

    # ------------------------------------------------------------------
    # Connection handling / dispatch
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._open_writers.add(writer)
        try:
            while not self._dead:
                frame = await protocol.read_frame(reader)
                if frame is None or self._dead:
                    break
                reply = await self._dispatch(frame)
                if self._dead:
                    break
                writer.write(protocol.encode_frame("reply", reply))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels in-flight handlers; ending the
            # task cleanly avoids spurious loop-callback logging.
            pass
        finally:
            self._open_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, frame: dict) -> dict:
        op = frame["op"]
        payload = frame["payload"]
        now = self.tracer.now()
        if op == "rtt_probe":
            return {"ok": True}  # the measurement is the round trip itself
        if op == "process_probe":
            reply = self._run_effects(
                self._machine.handle(
                    ProbeRequested(
                        now, recent_mean_ms=self._recent_mean_sojourn_ms()
                    )
                )
            )
            assert isinstance(reply, ReplyProbe)
            probe = ProbeReply(
                node_id=self.node_id,
                what_if_ms=reply.what_if_ms,
                seq_num=reply.seq_num,
                attached_users=reply.attached_users,
                current_proc_ms=reply.current_proc_ms,
                stay_ms=reply.stay_ms,
            )
            return {"ok": True, "probe": to_wire(probe)}
        if op == "join":
            reply = self._run_effects(
                self._machine.handle(
                    JoinRequested(
                        now,
                        payload["user_id"],
                        payload["seq_num"],
                        payload.get("fps", self.standard_fps),
                    )
                )
            )
            assert isinstance(reply, ReplyJoin)
            if reply.accepted:
                self._last_seen[payload["user_id"]] = time.monotonic()
            return {"ok": True, "accepted": reply.accepted, "seq_num": reply.seq_num}
        if op == "unexpected_join":
            reply = self._run_effects(
                self._machine.handle(
                    UnexpectedJoinRequested(
                        now,
                        payload["user_id"],
                        payload.get("fps", self.standard_fps),
                    )
                )
            )
            assert isinstance(reply, ReplyJoin)
            if reply.accepted:
                self._last_seen[payload["user_id"]] = time.monotonic()
            return {"ok": True, "accepted": reply.accepted}
        if op == "leave":
            self._last_seen.pop(payload["user_id"], None)
            self._run_effects(
                self._machine.handle(LeaveRequested(now, payload["user_id"]))
            )
            return {"ok": True}
        if op == "frame":
            user_id = payload.get("user_id")
            if user_id is not None:
                self._last_seen[user_id] = time.monotonic()
            result = await self._process_frame()
            if result is None:
                return {"ok": False, "error": "overloaded"}
            sojourn, wait_wall_ms, service_wall_ms = result
            return {
                "ok": True,
                "proc_ms": sojourn,
                # wall-clock split for the client's phase decomposition
                "wait_wall_ms": wait_wall_ms,
                "service_wall_ms": service_wall_ms,
                "result": "objects-detected",
            }
        if op == "status":
            return {
                "ok": True,
                "node_id": self.node_id,
                "attached": sorted(self.attached),
                "seq_num": self.seq_num,
                "what_if_ms": self.what_if_ms,
                "frames_processed": self.frames_processed,
                "test_workload_invocations": self.test_workload_invocations,
            }
        return {"ok": False, "error": f"unknown op: {op!r}"}
