"""A live edge node: Table I APIs + frame processing over TCP.

Processing is a real ``asyncio`` sleep of the profile's per-frame time
scaled by ``time_scale`` (default 0.1: a 30 ms frame sleeps 3 ms, so
tests run fast while contention behaviour — a worker pool of size
``parallelism`` with a bounded queue — stays real). The what-if cache,
the three test-workload triggers and the ``seqNum`` join protocol follow
:class:`repro.core.edge_server.EdgeServer` exactly.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Optional, Tuple

from repro.core.messages import NodeStatus, ProbeReply, to_wire
from repro.geo import geohash as gh
from repro.geo.point import GeoPoint
from repro.nodes.hardware import HardwareProfile
from repro.nodes.processing import analytic_sojourn_ms
from repro.obs.events import CacheHit, CacheMiss, HeartbeatMissed, NodeFail, TestWorkloadInvoked
from repro.obs.tracer import Tracer
from repro.runtime import protocol


class LiveEdgeServer:
    """One volunteer/dedicated edge node on a localhost port."""

    def __init__(
        self,
        node_id: str,
        profile: HardwareProfile,
        point: GeoPoint,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        manager_host: Optional[str] = None,
        manager_port: Optional[int] = None,
        heartbeat_period_s: float = 1.0,
        max_heartbeat_backoff_s: float = 8.0,
        time_scale: float = 0.1,
        standard_fps: float = 20.0,
        dedicated: bool = False,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive: {time_scale}")
        self.node_id = node_id
        self.profile = profile
        self.point = point
        self.host = host
        self.port = port
        self.manager_host = manager_host
        self.manager_port = manager_port
        self.heartbeat_period_s = heartbeat_period_s
        self.max_heartbeat_backoff_s = max_heartbeat_backoff_s
        self.time_scale = time_scale
        self.standard_fps = standard_fps
        self.dedicated = dedicated
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self.heartbeat_failures = 0
        self._backoff_rng = random.Random(node_id)

        self.seq_num = 0
        self.attached: dict = {}
        self.what_if_ms: float = profile.base_frame_ms
        self.stay_ms: float = profile.base_frame_ms
        self.test_workload_invocations = 0
        self.frames_processed = 0
        self._completions: list = []  # (monotonic time, sojourn_ms)

        self._server: Optional[asyncio.AbstractServer] = None
        self._semaphore = asyncio.Semaphore(profile.parallelism)
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._queue_depth = 0
        self.max_queue_depth = 64
        self._dead = False
        self._open_writers: set = set()

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.tracer.enabled:
            self.tracer.emit(CacheMiss(self.tracer.now(), self.node_id, "prime"))
        await self._invoke_test_workload()
        if self.manager_host is not None and self.manager_port is not None:
            self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def stop(self) -> None:
        """Hard stop: the node vanishes, including live connections.

        A crashing volunteer does not finish in-flight conversations —
        open sockets are severed so attached clients observe a broken
        connection (their failure-detection signal).
        """
        if not self._dead:
            self.tracer.emit(NodeFail(self.tracer.now(), self.node_id))
        self._dead = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        for writer in list(self._open_writers):
            writer.close()
        self._open_writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    async def _process_frame(
        self, synthetic: bool = False
    ) -> Optional[Tuple[float, float, float]]:
        """Run one frame through the worker pool.

        Returns ``(sojourn_ms, wait_wall_ms, service_wall_ms)`` or None
        when the queue sheds the frame. ``sojourn_ms`` is the unscaled
        application time (wall sojourn divided by ``time_scale``);
        the wait/service components are *wall-clock* ms — they are what
        the frame reply carries so clients can decompose their measured
        end-to-end latency into queue/process/rtt phases exactly.
        """
        if self._queue_depth >= self.max_queue_depth:
            return None
        self._queue_depth += 1
        arrival = time.monotonic()
        service_start = arrival
        try:
            async with self._semaphore:
                service_start = time.monotonic()
                await asyncio.sleep(self.profile.base_frame_ms / 1000.0 * self.time_scale)
        finally:
            self._queue_depth -= 1
        done = time.monotonic()
        wait_wall_ms = (service_start - arrival) * 1000.0
        service_wall_ms = (done - service_start) * 1000.0
        sojourn_ms = (done - arrival) / self.time_scale * 1000.0
        if not synthetic:
            self.frames_processed += 1
            self._completions.append((done, sojourn_ms))
            if len(self._completions) > 64:
                del self._completions[:-64]
        return sojourn_ms, wait_wall_ms, service_wall_ms

    def _recent_mean_sojourn_ms(self) -> Optional[float]:
        cutoff = time.monotonic() - 3.0
        recent = [s for t, s in self._completions if t >= cutoff]
        if not recent:
            return None
        return sum(recent) / len(recent)

    async def _invoke_test_workload(self) -> None:
        """The "what-if" synthetic frame + demand projection (see the
        simulated twin for the rationale)."""
        self.test_workload_invocations += 1
        result = await self._process_frame(synthetic=True)
        if result is None:
            return
        measured = result[0]
        self.tracer.emit(TestWorkloadInvoked(self.tracer.now(), self.node_id))
        n = len(self.attached)
        projected = analytic_sojourn_ms(self.profile, (n + 1) * self.standard_fps)
        self.what_if_ms = max(measured, projected)
        self.stay_ms = max(
            measured, analytic_sojourn_ms(self.profile, max(n, 1) * self.standard_fps)
        )

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------
    def status(self) -> NodeStatus:
        return NodeStatus(
            node_id=self.node_id,
            lat=self.point.lat,
            lon=self.point.lon,
            geohash=gh.encode(self.point.lat, self.point.lon, 9),
            cores=self.profile.cores,
            capacity_fps=self.profile.capacity_fps,
            attached_users=len(self.attached),
            utilization=min(1.0, self._queue_depth / self.profile.parallelism),
            dedicated=self.dedicated,
        )

    async def _heartbeat_loop(self) -> None:
        """Heartbeat with bounded exponential backoff on failure.

        A flat retry-next-period loop hammers an unreachable manager at
        full rate forever (and every node in lockstep). Consecutive
        failures instead double the delay up to ``max_heartbeat_backoff_s``
        with +/-50% jitter so a recovering manager is not hit by a
        synchronized thundering herd; one success resets the cadence.
        """
        assert self.manager_host is not None and self.manager_port is not None
        while True:
            delay_s = self.heartbeat_period_s
            try:
                await protocol.request(
                    self.manager_host,
                    self.manager_port,
                    "heartbeat",
                    {
                        "status": to_wire(self.status()),
                        "host": self.host,
                        "port": self.port,
                    },
                )
                self.heartbeat_failures = 0
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                self.heartbeat_failures += 1
                backoff = min(
                    self.heartbeat_period_s * (2.0 ** min(self.heartbeat_failures, 6)),
                    self.max_heartbeat_backoff_s,
                )
                delay_s = backoff * (0.5 + self._backoff_rng.random())
                self.tracer.emit(
                    HeartbeatMissed(
                        self.tracer.now(),
                        self.node_id,
                        self.heartbeat_failures,
                        delay_s * 1000.0,
                    )
                )
            await asyncio.sleep(delay_s)

    # ------------------------------------------------------------------
    # Connection handling / dispatch
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._open_writers.add(writer)
        try:
            while not self._dead:
                frame = await protocol.read_frame(reader)
                if frame is None or self._dead:
                    break
                reply = await self._dispatch(frame)
                if self._dead:
                    break
                writer.write(protocol.encode_frame("reply", reply))
                await writer.drain()
        except (protocol.ProtocolError, ConnectionResetError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels in-flight handlers; ending the
            # task cleanly avoids spurious loop-callback logging.
            pass
        finally:
            self._open_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _dispatch(self, frame: dict) -> dict:
        op = frame["op"]
        payload = frame["payload"]
        if op == "rtt_probe":
            return {"ok": True}  # the measurement is the round trip itself
        if op == "process_probe":
            if self.tracer.enabled:
                self.tracer.emit(
                    CacheHit(self.tracer.now(), self.node_id, self.what_if_ms)
                )
            current = self._recent_mean_sojourn_ms()
            reply = ProbeReply(
                node_id=self.node_id,
                what_if_ms=self.what_if_ms,
                seq_num=self.seq_num,
                attached_users=len(self.attached),
                current_proc_ms=current if current is not None else self.what_if_ms,
                stay_ms=self.stay_ms,
            )
            return {"ok": True, "probe": to_wire(reply)}
        if op == "join":
            user_id = payload["user_id"]
            if payload["seq_num"] != self.seq_num:
                return {"ok": True, "accepted": False, "seq_num": self.seq_num}
            self.seq_num += 1
            self.attached[user_id] = payload.get("fps", self.standard_fps)
            self._mark_cache_stale("join")
            asyncio.ensure_future(self._delayed_test_workload())
            return {"ok": True, "accepted": True, "seq_num": self.seq_num}
        if op == "unexpected_join":
            self.seq_num += 1
            self.attached[payload["user_id"]] = payload.get("fps", self.standard_fps)
            self._mark_cache_stale("join")
            asyncio.ensure_future(self._invoke_test_workload())
            return {"ok": True, "accepted": True}
        if op == "leave":
            if payload["user_id"] in self.attached:
                del self.attached[payload["user_id"]]
                self.seq_num += 1
                self._mark_cache_stale("leave")
                asyncio.ensure_future(self._invoke_test_workload())
            return {"ok": True}
        if op == "frame":
            result = await self._process_frame()
            if result is None:
                return {"ok": False, "error": "overloaded"}
            sojourn, wait_wall_ms, service_wall_ms = result
            return {
                "ok": True,
                "proc_ms": sojourn,
                # wall-clock split for the client's phase decomposition
                "wait_wall_ms": wait_wall_ms,
                "service_wall_ms": service_wall_ms,
                "result": "objects-detected",
            }
        if op == "status":
            return {
                "ok": True,
                "node_id": self.node_id,
                "attached": sorted(self.attached),
                "seq_num": self.seq_num,
                "what_if_ms": self.what_if_ms,
                "frames_processed": self.frames_processed,
                "test_workload_invocations": self.test_workload_invocations,
            }
        return {"ok": False, "error": f"unknown op: {op!r}"}

    def _mark_cache_stale(self, reason: str) -> None:
        """Emit the cache-staleness trace event for one refresh trigger."""
        if self.tracer.enabled:
            self.tracer.emit(CacheMiss(self.tracer.now(), self.node_id, reason))

    async def _delayed_test_workload(self) -> None:
        """Join-triggered invocation, delayed by ~2x a common RTT
        (scaled), so it observes the new user's traffic."""
        await asyncio.sleep(0.04 * self.time_scale * 10)
        await self._invoke_test_workload()
