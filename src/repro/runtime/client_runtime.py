"""The live client — asyncio driver over the protocol core.

All of Algorithm 2's *decisions* — when to discover, which candidates
to probe, the LO/GO ranking, the seqNum-echoing join with
repeat-from-discovery on rejection, backup adoption and the failover
walk — live in :class:`repro.protocol.selection.SelectionMachine`, the
same machine the simulated :class:`repro.core.client.EdgeClient`
drives. This class only does the I/O: real TCP requests over standing
connections, wall-clock RTT measurement, and the translation between
awaited socket replies and protocol events/effects.

One consequence of sharing the machine: a ``select_and_join()`` while
already attached to the best-ranked node now *stays* (no redundant
re-join bumping the node's seqNum), exactly like the simulated client —
previously the live client re-joined unconditionally.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.messages import DiscoveryQuery, from_wire, to_wire
from repro.faults.injector import MANAGER_ID
from repro.core.policies.local_policies import LocalSelectionPolicy
from repro.core.probing import ProbeOutcome
from repro.policy import SelectionPolicy, build_policy
from repro.sim.random import derive_seed
from repro.geo.point import GeoPoint
from repro.obs.events import (
    BreakerTransition,
    DiscoveryIssued,
    DiscoveryReturned,
    FrameDone,
    FrameStart,
    PhaseSpan,
    ProbeAnswered,
    ProbeSent,
    RetryScheduled,
)
from repro.obs.tracer import Tracer
from repro.protocol.effects import (
    Attached,
    Effect,
    EmitTrace,
    FlushBacklog,
    ProbeCandidates,
    SendDiscovery,
    SendFailoverJoin,
    SendJoin,
    SendLeave,
    StartTimer,
    UpdateBackups,
)
from repro.protocol.events import (
    CandidatesReceived,
    DiscoveryFailed,
    EdgeFailed,
    FailoverResult,
    JoinResult,
    ProbesCompleted,
    ProtocolEvent,
    RoundStarted,
)
from repro.protocol.selection import SelectionConfig, SelectionMachine
from repro.runtime import protocol
from repro.runtime.protocol import (
    CircuitBreaker,
    PersistentConnection,
    RetryPolicy,
    call_with_retry,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.injector import FaultInjector

#: The live client's default protocol constants. Dwell/hysteresis are
#: disabled because a live ``select_and_join()`` is an *explicit* round
#: (invoked by the application, not a periodic timer) — suppressing its
#: verdict would make the call a silent no-op.
_LIVE_DEFAULTS = SelectionConfig(
    min_dwell_ms=0.0, switch_penalty_ms=0.0, switch_penalty_fraction=0.0
)


class LiveClient:
    """An application user against a live manager + edge fleet.

    Runs the probing procedure of Algorithm 2: discover candidates at
    the manager, ``rtt_probe`` + ``process_probe`` each over standing
    connections, rank with the GO policy, ``Join()`` with the probed
    ``seqNum``, keep the rest as proactively connected backups, and
    offload frames; on a send failure, ``unexpected_join`` the best
    backup.
    """

    def __init__(
        self,
        user_id: str,
        point: GeoPoint,
        manager_host: str,
        manager_port: int,
        *,
        top_n: int = 3,
        policy: "Optional[str | SelectionPolicy | LocalSelectionPolicy]" = None,
        request_timeout: float = 5.0,
        tracer: Optional[Tracer] = None,
        selection_config: Optional[SelectionConfig] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_failure_threshold: int = 3,
        breaker_reset_s: float = 2.0,
        max_reconnect_attempts: int = 3,
    ) -> None:
        self.user_id = user_id
        self.point = point
        self.manager_host = manager_host
        self.manager_port = manager_port
        self.request_timeout = request_timeout
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self._frame_counter = 0
        #: Manager-request retry (bounded attempts + total-latency budget).
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker_failure_threshold = breaker_failure_threshold
        self.breaker_reset_s = breaker_reset_s
        self.max_reconnect_attempts = max_reconnect_attempts
        #: Per-endpoint breakers, persistent across reconnects.
        self.breakers: Dict[str, CircuitBreaker] = {}
        #: Optional chaos hooks, wired by the chaos controller: an
        #: injector, a plan-time clock (plan ms) and a wall-seconds-per-
        #: plan-ms scale for injected delays.
        self.faults: Optional["FaultInjector"] = None
        self.fault_clock: Callable[[], float] = lambda: 0.0
        self.fault_scale: float = 1.0

        config = selection_config
        if config is None:
            config = SelectionConfig(
                top_n=top_n,
                min_dwell_ms=_LIVE_DEFAULTS.min_dwell_ms,
                switch_penalty_ms=_LIVE_DEFAULTS.switch_penalty_ms,
                switch_penalty_fraction=_LIVE_DEFAULTS.switch_penalty_fraction,
            )
        #: The sans-IO protocol core this driver executes. The policy
        #: spec accepts a repro.policy registry name, a policy object,
        #: or a legacy ranking callable; its private randomness is
        #: seeded deterministically from the user id.
        self._machine = SelectionMachine(
            user_id,
            build_policy(
                policy if policy is not None else "go",
                seed=derive_seed(0, f"live-policy.{user_id}"),
            ),
            config,
            detail_guard=lambda: self.tracer.enabled,
        )
        self._round_failed = False

        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.connections: Dict[str, PersistentConnection] = {}
        self.latencies_ms: List[float] = []
        self.probes_sent = 0
        self.joins_rejected = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    # Protocol-core state, exposed on the driver.
    # ------------------------------------------------------------------
    @property
    def current_edge(self) -> Optional[str]:
        return self._machine.current_edge

    @current_edge.setter
    def current_edge(self, node_id: Optional[str]) -> None:
        self._machine.current_edge = node_id

    @property
    def top_n(self) -> int:
        return self._machine.top_n

    @top_n.setter
    def top_n(self, value: int) -> None:
        self._machine.top_n = value

    @property
    def policy(self) -> SelectionPolicy:
        return self._machine.policy

    @policy.setter
    def policy(
        self, policy: "str | SelectionPolicy | LocalSelectionPolicy"
    ) -> None:
        if isinstance(policy, str):
            policy = build_policy(
                policy, seed=derive_seed(0, f"live-policy.{self.user_id}")
            )
        self._machine.policy = policy

    @property
    def backups(self) -> List[str]:
        return list(self._machine.monitor.backups)

    def _now(self) -> float:
        return self.tracer.now()

    # ------------------------------------------------------------------
    # Protocol-event feed + effect execution
    # ------------------------------------------------------------------
    async def _drive(self, event: ProtocolEvent) -> None:
        """Advance the protocol machine, performing the I/O it asks for.

        Event-producing effects (discovery, probe fan-out, join,
        failover join) run their I/O inline and feed the result back to
        the machine before the drive returns, so one ``_drive`` call
        plays a whole protocol exchange to quiescence.
        """
        pending: Deque[Effect] = deque(self._machine.handle(event))
        while pending:
            effect = pending.popleft()
            if isinstance(effect, EmitTrace):
                self.tracer.emit(effect.event)
            elif isinstance(effect, SendDiscovery):
                try:
                    node_ids, widened = await self._discover_io(
                        effect.top_n, effect.exclude
                    )
                except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                    # Manager unreachable after the retry budget:
                    # degrade gracefully — the machine falls back to the
                    # last candidate list + adopted backups.
                    pending.extend(
                        self._machine.handle(
                            DiscoveryFailed(self._now(), reason="unreachable")
                        )
                    )
                else:
                    pending.extend(
                        self._machine.handle(
                            CandidatesReceived(self._now(), node_ids, widened)
                        )
                    )
            elif isinstance(effect, ProbeCandidates):
                outcomes = [
                    o
                    for o in [await self.probe(c) for c in effect.node_ids]
                    if o is not None
                ]
                pending.extend(
                    self._machine.handle(
                        ProbesCompleted(self._now(), tuple(outcomes))
                    )
                )
            elif isinstance(effect, SendJoin):
                pending.extend(
                    self._machine.handle(await self._join_io(effect.outcome))
                )
            elif isinstance(effect, SendLeave):
                await self.leave(effect.node_id)
            elif isinstance(effect, SendFailoverJoin):
                pending.extend(
                    self._machine.handle(
                        await self._failover_join_io(effect.node_id)
                    )
                )
            elif isinstance(effect, Attached):
                try:
                    await self._connection(effect.node_id)
                except KeyError:  # pragma: no cover - address unknown
                    pass
            elif isinstance(effect, UpdateBackups):
                # keep backup connections warm (proactive establishment)
                for outcome in effect.outcomes:
                    try:
                        await self._connection(outcome.node_id)
                    except KeyError:  # pragma: no cover - address unknown
                        pass
            elif isinstance(effect, FlushBacklog):
                pass  # the live client has no frame backlog
            elif isinstance(effect, StartTimer):
                # Round failed while detached; the select_and_join retry
                # loop owns the pacing.
                self._round_failed = True
            else:  # pragma: no cover - forward-compatibility guard
                raise TypeError(f"unhandled effect {type(effect).__name__}")

    # ------------------------------------------------------------------
    # I/O helpers (trace-free: decision traces come from the machine)
    # ------------------------------------------------------------------
    async def _fault_gate(self, dst: str, op: str) -> None:
        """Consult the chaos injector (no-op without one).

        A dropped/partitioned/outaged message surfaces as an
        ``asyncio.TimeoutError`` — exactly what the real network would
        eventually produce — so every existing error path (retry,
        failover, breaker) exercises unchanged. Injected delays sleep
        ``extra_delay_ms x fault_scale`` wall milliseconds
        (``fault_scale`` = wall-ms per plan-ms).
        """
        faults = self.faults
        if faults is None:
            return
        verdict = faults.decide(self.user_id, dst, op, self.fault_clock())
        if not verdict.deliver:
            raise asyncio.TimeoutError(
                f"injected {verdict.kind} ({verdict.rule_id}) on {op!r}"
            )
        if verdict.extra_delay_ms > 0.0:
            await asyncio.sleep(verdict.extra_delay_ms * self.fault_scale / 1000.0)

    async def _discover_io(
        self, top_n: int, exclude: Tuple[str, ...]
    ) -> Tuple[Tuple[str, ...], bool]:
        """One discovery round trip (retried under the retry policy);
        refreshes the address book."""
        query = DiscoveryQuery(
            user_id=self.user_id,
            lat=self.point.lat,
            lon=self.point.lon,
            top_n=top_n,
            exclude=exclude,
        )

        async def attempt() -> Dict[str, object]:
            await self._fault_gate(MANAGER_ID, "discover")
            return await protocol.request(
                self.manager_host,
                self.manager_port,
                "discover",
                {"query": to_wire(query)},
                timeout=self.request_timeout,
            )

        def on_retry(attempt_no: int, delay_s: float) -> None:
            self.tracer.emit(
                RetryScheduled(
                    self._now(), self.user_id, "discover", attempt_no,
                    delay_s * 1000.0,
                )
            )

        reply = await call_with_retry(
            attempt, self.retry_policy, on_retry=on_retry
        )
        candidates = from_wire(reply["candidates"])
        for node_id, address in reply.get("addresses", {}).items():
            self.addresses[node_id] = (address[0], address[1])
        return tuple(candidates.node_ids), candidates.widened

    async def discover(self) -> List[str]:
        """Edge discovery at the Central Manager (standalone API: emits
        the decision traces a machine-driven round would)."""
        self.tracer.emit(DiscoveryIssued(self._now(), self.user_id))
        node_ids, widened = await self._discover_io(self.top_n, ())
        if self.tracer.enabled:
            self.tracer.emit(
                DiscoveryReturned(
                    self._now(), self.user_id, node_ids, widened=widened
                )
            )
        return list(node_ids)

    def _breaker(self, node_id: str) -> CircuitBreaker:
        """The per-endpoint breaker — shared across reconnects so a dead
        edge's failure history survives the connection object."""
        breaker = self.breakers.get(node_id)
        if breaker is None:

            def on_transition(old: str, new: str) -> None:
                self.tracer.emit(
                    BreakerTransition(self._now(), node_id, old, new)
                )

            breaker = CircuitBreaker(
                self.breaker_failure_threshold,
                self.breaker_reset_s,
                on_transition=on_transition,
            )
            self.breakers[node_id] = breaker
        return breaker

    async def _connection(self, node_id: str) -> PersistentConnection:
        connection = self.connections.get(node_id)
        if connection is None:
            host, port = self.addresses[node_id]
            connection = PersistentConnection(
                host,
                port,
                self.request_timeout,
                max_reconnect_attempts=self.max_reconnect_attempts,
                breaker=self._breaker(node_id),
            )
            self.connections[node_id] = connection
        return connection

    async def probe(self, node_id: str) -> Optional[ProbeOutcome]:
        """``RTT_probe`` + ``Process_probe`` one candidate; None if dead."""
        self.probes_sent += 1
        self.tracer.emit(ProbeSent(self._now(), self.user_id, node_id))
        try:
            await self._fault_gate(node_id, "probe")
            connection = await self._connection(node_id)
            start = time.monotonic()
            await connection.request("rtt_probe")
            rtt_ms = (time.monotonic() - start) * 1000.0
            reply = await connection.request("process_probe")
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
            self.connections.pop(node_id, None)
            return None
        probe = from_wire(reply["probe"])
        if self.tracer.enabled:
            self.tracer.emit(
                ProbeAnswered(
                    self._now(), self.user_id, node_id, rtt_ms,
                    probe.what_if_ms,
                )
            )
        return ProbeOutcome(
            node_id=node_id,
            d_prop_ms=rtt_ms,
            d_proc_ms=probe.what_if_ms,
            seq_num=probe.seq_num,
            attached_users=probe.attached_users,
            current_proc_ms=probe.current_proc_ms,
            stay_ms=probe.stay_ms,
            probed_at_ms=self._now(),
        )

    async def _join_io(self, best: ProbeOutcome) -> JoinResult:
        """``Join()`` the chosen candidate, echoing its probed seqNum."""
        attempted_at = self._now()
        try:
            await self._fault_gate(best.node_id, "join")
            connection = await self._connection(best.node_id)
            reply = await connection.request(
                "join",
                {"user_id": self.user_id, "seq_num": best.seq_num, "fps": 20.0},
            )
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError, KeyError):
            return JoinResult(
                self._now(),
                best.node_id,
                accepted=False,
                attempted_at=attempted_at,
                node_alive=False,
            )
        accepted = bool(reply.get("accepted"))
        if not accepted:
            self.joins_rejected += 1  # state changed: repeat from discovery
        return JoinResult(
            self._now(),
            best.node_id,
            accepted=accepted,
            attempted_at=attempted_at,
            node_alive=True,
        )

    async def _failover_join_io(self, backup_id: str) -> FailoverResult:
        """``Unexpected_join()`` one backup over its standing connection."""
        start = time.monotonic()
        try:
            await self._fault_gate(backup_id, "unexpected_join")
            connection = await self._connection(backup_id)
            reply = await connection.request(
                "unexpected_join", {"user_id": self.user_id, "fps": 20.0}
            )
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError, KeyError):
            return FailoverResult(
                self._now(), backup_id, accepted=False
            )
        return FailoverResult(
            self._now(),
            backup_id,
            accepted=bool(reply.get("accepted")),
            rtt_ms=(time.monotonic() - start) * 1000.0,
        )

    # ------------------------------------------------------------------
    # Selection round
    # ------------------------------------------------------------------
    async def select_and_join(self) -> str:
        """One full selection round (discovery -> probing -> join).

        Returns the chosen node id (the current edge when the machine
        decides staying put is best).

        Raises:
            RuntimeError: when no candidate accepts after retries.
        """
        for _ in range(4):
            self._round_failed = False
            await self._drive(RoundStarted(self._now()))
            if self.current_edge is not None and not self._round_failed:
                return self.current_edge
            await asyncio.sleep(0.2)
        raise RuntimeError(f"{self.user_id}: no candidate accepted the join")

    async def leave(self, node_id: str) -> None:
        try:
            await self._fault_gate(node_id, "leave")
            connection = await self._connection(node_id)
            await connection.request("leave", {"user_id": self.user_id})
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError, KeyError):
            pass

    # ------------------------------------------------------------------
    async def offload_frame(self) -> Optional[float]:
        """Send one frame; returns end-to-end latency (ms) or None (lost).

        On failure the failure-monitor path runs: ``unexpected_join`` the
        first live backup over its standing connection.
        """
        if self.current_edge is None:
            raise RuntimeError("not attached to any edge node")
        edge_id = self.current_edge
        self._frame_counter += 1
        frame_id = self._frame_counter
        connection = await self._connection(edge_id)
        tracer = self.tracer
        created_ms = tracer.now()
        if tracer.enabled:
            tracer.emit(FrameStart(created_ms, self.user_id, edge_id, frame_id))
        start = time.monotonic()
        try:
            await self._fault_gate(edge_id, "frame")
            reply = await connection.request("frame", {"user_id": self.user_id})
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
            tracer.emit(
                FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                          created_ms, None)
            )
            await self._failover()
            return None
        if not reply.get("ok"):
            tracer.emit(
                FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                          created_ms, None)
            )
            return None  # overloaded node shed the frame
        latency_ms = (time.monotonic() - start) * 1000.0
        self.latencies_ms.append(latency_ms)
        if tracer.enabled:
            now = tracer.now()
            # Decompose the measured latency with the node's wall-clock
            # wait/service split; the remainder is time on the wire.
            wait_ms = float(reply.get("wait_wall_ms", 0.0))
            service_ms = float(reply.get("service_wall_ms", 0.0))
            rtt_ms = max(0.0, latency_ms - wait_ms - service_ms)
            tracer.emit(PhaseSpan(now, self.user_id, frame_id, "rtt", rtt_ms))
            tracer.emit(PhaseSpan(now, self.user_id, frame_id, "queue", wait_ms))
            tracer.emit(
                PhaseSpan(now, self.user_id, frame_id, "process", service_ms)
            )
        tracer.emit(
            FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                      created_ms, latency_ms)
        )
        return latency_ms

    async def _failover(self) -> None:
        """The serving connection broke: walk the backup list.

        The machine walks ``unexpected_join`` over the adopted backups
        (the covered path) and falls back to an inline reactive
        re-discovery when every backup is dead (the uncovered path);
        if even that round fails, keep retrying via
        :meth:`select_and_join`.
        """
        failed_edge = self.current_edge
        self.connections.pop(failed_edge or "", None)
        self.failovers += 1
        if failed_edge is None:
            return
        await self._drive(EdgeFailed(self._now(), failed_edge))
        if self.current_edge is None:
            await self.select_and_join()

    async def close(self) -> None:
        if self.current_edge is not None:
            await self.leave(self.current_edge)
            self.current_edge = None
        for connection in self.connections.values():
            await connection.close()
        self.connections.clear()
