"""The live client: Algorithm 2 over real sockets."""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.core.messages import DiscoveryQuery, from_wire, to_wire
from repro.core.policies.local_policies import (
    LocalSelectionPolicy,
    sort_by_global_overhead,
)
from repro.core.probing import ProbeOutcome
from repro.geo.point import GeoPoint
from repro.obs.events import (
    CoveredFailover,
    DiscoveryIssued,
    DiscoveryReturned,
    FrameDone,
    FrameStart,
    JoinAccept,
    JoinAttempt,
    JoinReject,
    PhaseSpan,
    ProbeAnswered,
    ProbeSent,
    UncoveredFailure,
)
from repro.obs.tracer import Tracer
from repro.runtime import protocol
from repro.runtime.protocol import PersistentConnection


class LiveClient:
    """An application user against a live manager + edge fleet.

    Runs the probing procedure of Algorithm 2: discover candidates at
    the manager, ``rtt_probe`` + ``process_probe`` each over standing
    connections, rank with the GO policy, ``Join()`` with the probed
    ``seqNum``, keep the rest as proactively connected backups, and
    offload frames; on a send failure, ``unexpected_join`` the best
    backup.
    """

    def __init__(
        self,
        user_id: str,
        point: GeoPoint,
        manager_host: str,
        manager_port: int,
        *,
        top_n: int = 3,
        policy: Optional[LocalSelectionPolicy] = None,
        request_timeout: float = 5.0,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.user_id = user_id
        self.point = point
        self.manager_host = manager_host
        self.manager_port = manager_port
        self.top_n = top_n
        self.policy = policy or sort_by_global_overhead
        self.request_timeout = request_timeout
        self.tracer = tracer if tracer is not None else Tracer.disabled()
        self._frame_counter = 0

        self.current_edge: Optional[str] = None
        self.backups: List[str] = []
        self.addresses: Dict[str, Tuple[str, int]] = {}
        self.connections: Dict[str, PersistentConnection] = {}
        self.latencies_ms: List[float] = []
        self.probes_sent = 0
        self.joins_rejected = 0
        self.failovers = 0

    # ------------------------------------------------------------------
    async def discover(self) -> List[str]:
        """Edge discovery at the Central Manager."""
        self.tracer.emit(DiscoveryIssued(self.tracer.now(), self.user_id))
        query = DiscoveryQuery(
            user_id=self.user_id,
            lat=self.point.lat,
            lon=self.point.lon,
            top_n=self.top_n,
        )
        reply = await protocol.request(
            self.manager_host,
            self.manager_port,
            "discover",
            {"query": to_wire(query)},
            timeout=self.request_timeout,
        )
        candidates = from_wire(reply["candidates"])
        for node_id, address in reply.get("addresses", {}).items():
            self.addresses[node_id] = (address[0], address[1])
        if self.tracer.enabled:
            self.tracer.emit(
                DiscoveryReturned(
                    self.tracer.now(),
                    self.user_id,
                    candidates.node_ids,
                    widened=candidates.widened,
                )
            )
        return list(candidates.node_ids)

    async def _connection(self, node_id: str) -> PersistentConnection:
        connection = self.connections.get(node_id)
        if connection is None:
            host, port = self.addresses[node_id]
            connection = PersistentConnection(host, port, self.request_timeout)
            self.connections[node_id] = connection
        return connection

    async def probe(self, node_id: str) -> Optional[ProbeOutcome]:
        """``RTT_probe`` + ``Process_probe`` one candidate; None if dead."""
        self.probes_sent += 1
        self.tracer.emit(ProbeSent(self.tracer.now(), self.user_id, node_id))
        try:
            connection = await self._connection(node_id)
            start = time.monotonic()
            await connection.request("rtt_probe")
            rtt_ms = (time.monotonic() - start) * 1000.0
            reply = await connection.request("process_probe")
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
            self.connections.pop(node_id, None)
            return None
        probe = from_wire(reply["probe"])
        if self.tracer.enabled:
            self.tracer.emit(
                ProbeAnswered(
                    self.tracer.now(), self.user_id, node_id, rtt_ms,
                    probe.what_if_ms,
                )
            )
        return ProbeOutcome(
            node_id=node_id,
            d_prop_ms=rtt_ms,
            d_proc_ms=probe.what_if_ms,
            seq_num=probe.seq_num,
            attached_users=probe.attached_users,
            current_proc_ms=probe.current_proc_ms,
            stay_ms=probe.stay_ms,
        )

    async def select_and_join(self) -> str:
        """One full selection round (discovery -> probing -> join).

        Returns the chosen node id.

        Raises:
            RuntimeError: when no candidate accepts after retries.
        """
        for _ in range(4):
            candidates = await self.discover()
            outcomes = [o for o in [await self.probe(c) for c in candidates] if o]
            ranked = self.policy(outcomes)
            if not ranked:
                await asyncio.sleep(0.2)
                continue
            best = ranked[0]
            connection = await self._connection(best.node_id)
            if self.tracer.enabled:
                self.tracer.emit(
                    JoinAttempt(self.tracer.now(), self.user_id, best.node_id)
                )
            try:
                reply = await connection.request(
                    "join",
                    {"user_id": self.user_id, "seq_num": best.seq_num, "fps": 20.0},
                )
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
                self.tracer.emit(
                    JoinReject(self.tracer.now(), self.user_id, best.node_id)
                )
                continue
            if reply.get("accepted"):
                self.tracer.emit(
                    JoinAccept(self.tracer.now(), self.user_id, best.node_id)
                )
                if self.current_edge and self.current_edge != best.node_id:
                    await self.leave(self.current_edge)
                self.current_edge = best.node_id
                self.backups = [o.node_id for o in ranked[1:]]
                # keep backup connections warm (proactive establishment)
                for node_id in self.backups:
                    try:
                        await self._connection(node_id)
                    except KeyError:  # pragma: no cover - address unknown
                        pass
                return best.node_id
            self.tracer.emit(
                JoinReject(self.tracer.now(), self.user_id, best.node_id)
            )
            self.joins_rejected += 1  # state changed: repeat from discovery
        raise RuntimeError(f"{self.user_id}: no candidate accepted the join")

    async def leave(self, node_id: str) -> None:
        try:
            connection = await self._connection(node_id)
            await connection.request("leave", {"user_id": self.user_id})
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError, KeyError):
            pass

    # ------------------------------------------------------------------
    async def offload_frame(self) -> Optional[float]:
        """Send one frame; returns end-to-end latency (ms) or None (lost).

        On failure the failure-monitor path runs: ``unexpected_join`` the
        first live backup over its standing connection.
        """
        if self.current_edge is None:
            raise RuntimeError("not attached to any edge node")
        edge_id = self.current_edge
        self._frame_counter += 1
        frame_id = self._frame_counter
        connection = await self._connection(edge_id)
        tracer = self.tracer
        created_ms = tracer.now()
        if tracer.enabled:
            tracer.emit(FrameStart(created_ms, self.user_id, edge_id, frame_id))
        start = time.monotonic()
        try:
            reply = await connection.request("frame")
        except (OSError, protocol.ProtocolError, asyncio.TimeoutError):
            tracer.emit(
                FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                          created_ms, None)
            )
            await self._failover()
            return None
        if not reply.get("ok"):
            tracer.emit(
                FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                          created_ms, None)
            )
            return None  # overloaded node shed the frame
        latency_ms = (time.monotonic() - start) * 1000.0
        self.latencies_ms.append(latency_ms)
        if tracer.enabled:
            now = tracer.now()
            # Decompose the measured latency with the node's wall-clock
            # wait/service split; the remainder is time on the wire.
            wait_ms = float(reply.get("wait_wall_ms", 0.0))
            service_ms = float(reply.get("service_wall_ms", 0.0))
            rtt_ms = max(0.0, latency_ms - wait_ms - service_ms)
            tracer.emit(PhaseSpan(now, self.user_id, frame_id, "rtt", rtt_ms))
            tracer.emit(PhaseSpan(now, self.user_id, frame_id, "queue", wait_ms))
            tracer.emit(
                PhaseSpan(now, self.user_id, frame_id, "process", service_ms)
            )
        tracer.emit(
            FrameDone(tracer.now(), self.user_id, edge_id, frame_id,
                      created_ms, latency_ms)
        )
        return latency_ms

    async def _failover(self) -> None:
        self.connections.pop(self.current_edge or "", None)
        self.current_edge = None
        self.failovers += 1
        while self.backups:
            backup = self.backups.pop(0)
            try:
                connection = await self._connection(backup)
                reply = await connection.request(
                    "unexpected_join", {"user_id": self.user_id, "fps": 20.0}
                )
            except (OSError, protocol.ProtocolError, asyncio.TimeoutError, KeyError):
                continue
            if reply.get("accepted"):
                self.tracer.emit(
                    CoveredFailover(self.tracer.now(), self.user_id, backup)
                )
                self.current_edge = backup
                return
        # uncovered failure: full re-discovery
        self.tracer.emit(UncoveredFailure(self.tracer.now(), self.user_id))
        await self.select_and_join()

    async def close(self) -> None:
        if self.current_edge is not None:
            await self.leave(self.current_edge)
            self.current_edge = None
        for connection in self.connections.values():
            await connection.close()
        self.connections.clear()
