"""repro — reproduction of "Towards Elasticity in Heterogeneous Edge-dense
Environments" (Huang et al., ICDCS 2022).

A client-centric distributed edge selection system over volunteer edge
resources, plus every substrate it needs: a deterministic discrete-event
simulator, geographic/network/compute models, churn generators, the
paper's baselines, an offline optimal-assignment oracle, experiment
builders for every figure and table, and a live asyncio TCP runtime
speaking the same protocol.

Quickstart::

    from repro import ScenarioBuilder, SystemConfig
    from repro.geo import GeoPoint
    from repro.nodes import profile_by_name

    system = (
        ScenarioBuilder(SystemConfig(top_n=3, seed=7))
        .node("V1", profile_by_name("V1"), point=GeoPoint(44.98, -93.26))
        .node("V2", profile_by_name("V2"), point=GeoPoint(44.95, -93.20))
        .client("u1", point=GeoPoint(44.97, -93.25))
        .build()
    )
    system.run_for(30_000)                     # 30 simulated seconds
    print(system.clients["u1"].stats.mean_latency_ms)
"""

from repro.api import ScenarioBuilder
from repro.core.adaptive_robustness import AdaptiveRobustness
from repro.core.client import ClientLike, ClientStats, EdgeClient
from repro.core.config import SystemConfig
from repro.core.edge_server import EdgeServer
from repro.core.manager import CentralManager
from repro.core.multiapp import ApplicationSpec, MultiAppDeployment
from repro.core.policies.reputation import ReputationTracker
from repro.core.system import EdgeSystem
from repro.metrics.collector import MetricsCollector
from repro.net.topology import EndpointSpec
from repro.obs import TraceAnalyzer, Tracer

__version__ = "1.0.0"

__all__ = [
    "EdgeSystem",
    "EdgeClient",
    "EdgeServer",
    "CentralManager",
    "SystemConfig",
    "ScenarioBuilder",
    "EndpointSpec",
    "ClientLike",
    "ClientStats",
    "MetricsCollector",
    "Tracer",
    "TraceAnalyzer",
    "AdaptiveRobustness",
    "MultiAppDeployment",
    "ApplicationSpec",
    "ReputationTracker",
    "__version__",
]
