"""The metro-scale simulation kernel.

:class:`MetroKernel` advances one shard (or the whole metro when
unsharded) of a :class:`~repro.metro.spec.MetroSpec` population. It is a
deliberately coarser model than the high-fidelity
:class:`~repro.core.system.EdgeSystem` kernel — built to answer
population-scale questions (load balance, failover coverage, handoff
rates at 10^5 nodes / 10^6 users) that the per-message kernel cannot
reach:

- **Tick quantization.** All control-plane activity — initial attach,
  periodic re-selection rounds, node failures, failure detections, shard
  boundary epochs — happens on multiples of ``SystemConfig.
  cohort_tick_ms``. Within a tick window the world is frozen, which is
  the load-bearing property behind cohort batching: frame outcomes in a
  window are a pure function of per-user state at the window's start,
  so whole cohorts can be advanced with array arithmetic.
- **Analytic queueing.** Instead of simulating each node's frame queue,
  per-frame wait uses the M/D/1 mean-wait closed form over the node's
  attached offered load. Service and propagation reuse the constants of
  :class:`~repro.net.latency.DistanceRttModel` (HOME_WIFI endpoints).
- **Two stepping modes, one control plane.** ``cohort_batching=True``
  advances frames with numpy; ``False`` schedules one pooled event per
  frame through the real :class:`~repro.sim.events.EventQueue`. Both
  modes share every line of control-plane code and emit the same
  trace-event multiset (property-tested) — the per-client mode is the
  reference implementation and the fallback semantics for clients in
  failover/re-selection are identical by construction.

Entity naming: node ``i`` of the population is ``n{i}`` in every trace
event and public API; user ``j`` is ``u{j}``. Shard-local arrays map to
these global indices via ``n_gid``/``u_gid``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import SystemConfig
from repro.geo import geohash
from repro.metro.spec import MetroPopulation, MetroSpec, quantize_ticks
from repro.net.latency import TIER_INFLATION_MS, NetworkTier
from repro.obs.events import (
    CoveredFailover,
    FrameDone,
    JoinAccept,
    NodeFail,
    ShardHandoff,
    Switch,
    TraceEvent,
    UncoveredFailure,
)
from repro.obs.tracer import Tracer
from repro.sim.events import EventPool, EventQueue

__all__ = [
    "MetroKernel",
    "MetroShardReport",
    "MigrationRecord",
    "ShardOutbox",
    "ShardInbox",
]

#: Latency-model constants, mirroring DistanceRttModel defaults with
#: both endpoints on the HOME_WIFI tier (the volunteer/user last mile).
_RTT_FLOOR_MS = 1.0
_MS_PER_KM = 0.0075
_PATH_STRETCH = 1.6
_TIER_MS = 2.0 * TIER_INFLATION_MS[NetworkTier.HOME_WIFI]
#: M/D/1 utilization cap — matches the EdgeSystem queue's stability
#: guard: beyond this the analytic wait would explode to infinity.
_RHO_CAP = 0.95

_EARTH_RADIUS_KM = 6371.0088


def _haversine_km(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized great-circle distance (same formula as GeoPoint)."""
    p1 = np.radians(lat1)
    p2 = np.radians(lat2)
    dphi = p2 - p1
    dlmb = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2.0) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


@dataclass
class MigrationRecord:
    """One user crossing the shard boundary channel (picklable)."""

    user_gid: int
    target_gid: int
    from_shard: str
    lat: float
    lon: float
    phase_ms: float
    frames_done: int
    frames_lost: int
    latency_sum_ms: float
    latency_max_ms: float


@dataclass
class ShardOutbox:
    """What one shard publishes at an epoch boundary."""

    shard_id: str
    #: Authoritative (load_fps, alive) for every node this shard owns
    #: that is ghost-advertised elsewhere.
    exports: Dict[int, Tuple[float, bool]] = field(default_factory=dict)
    migrations: List[MigrationRecord] = field(default_factory=list)


@dataclass
class ShardInbox:
    """What one shard receives at an epoch boundary (already routed)."""

    #: Ghost refresh: node gid -> (load_fps, alive).
    ghost_updates: Dict[int, Tuple[float, bool]] = field(default_factory=dict)
    migrations: List[MigrationRecord] = field(default_factory=list)


@dataclass
class MetroShardReport:
    """Counters and (optionally captured) trace of one shard kernel."""

    shard_id: str
    nodes: int
    users: int
    frames_done: int
    frames_lost: int
    switches: int
    covered_failovers: int
    uncovered_failures: int
    handoffs_out: int
    handoffs_in: int
    unattached_initial: int
    latency_sum_ms: float
    latency_max_ms: float
    frames_advanced: int
    control_ops: int
    pool_acquired: int
    pool_recycled: int
    trace_events: List[TraceEvent] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        if self.frames_done == 0:
            raise ValueError("no completed frames")
        return self.latency_sum_ms / self.frames_done


class MetroKernel:
    """One shard of the cohort-batched metro simulation.

    Args:
        config: system tunables; the metro kernel honours ``top_n``,
            ``probing_period_ms``, ``failure_detection_ms``,
            ``min_dwell_ms``, ``switch_penalty_ms``/``_fraction`` and
            the metro knobs (``cohort_batching``, ``cohort_tick_ms``).
        spec: the metro deployment shape.
        population: generated entity arrays (shared, never mutated).
        shard_id: name used in handoff trace events.
        node_gids: global indices of nodes this shard *owns* (ascending;
            None = all).
        user_gids: global indices of users starting on this shard
            (ascending; None = all).
        ghost_gids: global indices of boundary nodes owned by other
            shards but advertised here (ascending).
        ghost_shards: owning shard id per ghost (parallel to
            ``ghost_gids``).
        export_gids: owned nodes that other shards ghost-advertise; their
            (load, alive) goes into every epoch outbox.
        tracer: trace capture; defaults to a disabled tracer.
    """

    def __init__(
        self,
        config: SystemConfig,
        spec: MetroSpec,
        population: MetroPopulation,
        *,
        shard_id: str = "metro",
        node_gids: Optional[np.ndarray] = None,
        user_gids: Optional[np.ndarray] = None,
        ghost_gids: Optional[np.ndarray] = None,
        ghost_shards: Optional[List[str]] = None,
        export_gids: Optional[np.ndarray] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config
        self.spec = spec
        self.shard_id = shard_id
        self.trace = tracer if tracer is not None else Tracer.disabled()

        if node_gids is None:
            node_gids = np.arange(population.nodes, dtype=np.int64)
        if user_gids is None:
            user_gids = np.arange(population.users, dtype=np.int64)
        if ghost_gids is None:
            ghost_gids = np.empty(0, dtype=np.int64)
        ghost_shards = list(ghost_shards or [])
        if len(ghost_shards) != ghost_gids.size:
            raise ValueError("ghost_shards must parallel ghost_gids")
        self._export_gids = (
            np.asarray(export_gids, dtype=np.int64)
            if export_gids is not None
            else np.empty(0, dtype=np.int64)
        )

        # --- node table: owned nodes first, then ghosts --------------
        own = np.asarray(node_gids, dtype=np.int64)
        gho = np.asarray(ghost_gids, dtype=np.int64)
        self.n_gid = np.concatenate([own, gho])
        self.n_lat = population.node_lat[self.n_gid].copy()
        self.n_lon = population.node_lon[self.n_gid].copy()
        self.n_service = population.node_service_ms[self.n_gid].copy()
        self.n_alive = np.ones(self.n_gid.size, dtype=bool)
        self.n_load = np.zeros(self.n_gid.size, dtype=np.float64)
        self.n_ghost = np.zeros(self.n_gid.size, dtype=bool)
        self.n_ghost[own.size :] = True
        self._ghost_shard: Dict[int, str] = {
            int(own.size + i): ghost_shards[i] for i in range(gho.size)
        }
        self._node_local: Dict[int, int] = {
            int(g): i for i, g in enumerate(self.n_gid)
        }
        n_cell = population.node_cell[self.n_gid]
        #: cell id -> ascending local node indices hosted in that cell.
        self._cell_nodes: Dict[int, np.ndarray] = {}
        order = np.argsort(n_cell, kind="stable")
        sorted_cells = n_cell[order]
        starts = np.flatnonzero(
            np.r_[True, sorted_cells[1:] != sorted_cells[:-1]]
        )
        bounds = np.r_[starts, sorted_cells.size]
        for i, s in enumerate(starts):
            members = np.sort(order[s : bounds[i + 1]])
            self._cell_nodes[int(sorted_cells[s])] = members
        self._cell_cands: Dict[int, np.ndarray] = {}

        # --- user table ----------------------------------------------
        ug = np.asarray(user_gids, dtype=np.int64)
        self.u_gid = ug.copy()
        self.u_lat = population.user_lat[ug].copy()
        self.u_lon = population.user_lon[ug].copy()
        self.u_phase = population.user_phase_ms[ug].copy()
        self.u_cell = population.user_cell[ug].copy()
        self.u_node = np.full(ug.size, -1, dtype=np.int64)
        self.u_base = np.zeros(ug.size, dtype=np.float64)
        self.u_active = np.ones(ug.size, dtype=bool)
        self.u_join_tick = np.zeros(ug.size, dtype=np.int64)
        self.u_pending = np.full(ug.size, -1, dtype=np.int64)
        self.u_frames = np.zeros(ug.size, dtype=np.int64)
        self.u_lost = np.zeros(ug.size, dtype=np.int64)
        self.u_lat_sum = np.zeros(ug.size, dtype=np.float64)
        self.u_lat_max = np.zeros(ug.size, dtype=np.float64)

        # --- time & quantized control parameters ---------------------
        self.tick_ms = config.cohort_tick_ms
        self.interval_ms = spec.interval_ms
        self.fps = spec.fps
        self._tick_index = 0
        self._detect_ticks = quantize_ticks(config.failure_detection_ms, self.tick_ms)
        self._period_ticks = quantize_ticks(config.probing_period_ms, self.tick_ms)
        self._dwell_ticks = int(ceil(config.min_dwell_ms / self.tick_ms - 1e-9))
        self._agenda: Dict[int, List[Tuple[str, int]]] = {}
        self._pending_handoffs: List[int] = []

        self.batched = config.cohort_batching
        self._queue = EventQueue()
        # Sized to hold a full tick window's frame backlog, so after the
        # first window nearly every frame event is recycled.
        self._pool = EventPool(max_size=1 << 16)
        self._window_wait: Optional[np.ndarray] = None

        # --- counters -------------------------------------------------
        self.frames_advanced = 0
        self.control_ops = 0
        self.switches = 0
        self.covered_failovers = 0
        self.uncovered_failures = 0
        self.handoffs_out = 0
        self.handoffs_in = 0
        self.unattached_initial = 0

    # ------------------------------------------------------------------
    # Public stepping API
    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        return self._tick_index * self.tick_ms

    def schedule_node_fail(self, node_gid: int, at_ms: float) -> None:
        """Kill node ``n{node_gid}`` at the tick boundary covering
        ``at_ms`` (rounded up; quantization contract)."""
        local = self._node_local.get(int(node_gid))
        if local is None:
            raise KeyError(f"node n{node_gid} is not on shard {self.shard_id!r}")
        if self.n_ghost[local]:
            raise ValueError(
                f"node n{node_gid} is a ghost on shard {self.shard_id!r}; "
                "schedule the failure on its owning shard"
            )
        tick = max(self._tick_index, int(ceil(at_ms / self.tick_ms - 1e-9)))
        self._agenda.setdefault(tick, []).append(("fail", local))

    def run(self, sim_seconds: float) -> MetroShardReport:
        """Step from now to ``sim_seconds`` and report."""
        if sim_seconds <= 0:
            raise ValueError(f"sim_seconds must be positive: {sim_seconds}")
        self.step_to(sim_seconds * 1000.0)
        return self.report()

    def step_to(self, t_ms: float) -> None:
        """Advance to ``t_ms`` (must be a whole multiple of the tick)."""
        target = round(t_ms / self.tick_ms)
        if abs(target * self.tick_ms - t_ms) > 1e-6:
            raise ValueError(
                f"step_to target {t_ms} is not a multiple of tick {self.tick_ms}"
            )
        while self._tick_index < target:
            self._control(self._tick_index)
            self._advance_frames(self._tick_index)
            self._tick_index += 1

    # ------------------------------------------------------------------
    # Boundary channel (called by the runner at epoch boundaries)
    # ------------------------------------------------------------------
    def finish_epoch(self) -> ShardOutbox:
        """Publish exports + migrations decided during the past epoch."""
        out = ShardOutbox(shard_id=self.shard_id)
        for gid in self._export_gids:
            local = self._node_local[int(gid)]
            out.exports[int(gid)] = (float(self.n_load[local]), bool(self.n_alive[local]))
        for u in sorted(self._pending_handoffs, key=lambda i: int(self.u_gid[i])):
            ghost_local = int(self.u_pending[u])
            record = MigrationRecord(
                user_gid=int(self.u_gid[u]),
                target_gid=int(self.n_gid[ghost_local]),
                from_shard=self.shard_id,
                lat=float(self.u_lat[u]),
                lon=float(self.u_lon[u]),
                phase_ms=float(self.u_phase[u]),
                frames_done=int(self.u_frames[u]),
                frames_lost=int(self.u_lost[u]),
                latency_sum_ms=float(self.u_lat_sum[u]),
                latency_max_ms=float(self.u_lat_max[u]),
            )
            out.migrations.append(record)
            # Detach locally: the user's stats travel with the record,
            # so zero them here to avoid double counting in reports.
            cur = int(self.u_node[u])
            if cur >= 0:
                self.n_load[cur] -= self.fps
            self.u_node[u] = -1
            self.u_active[u] = False
            self.u_pending[u] = -1
            self.u_frames[u] = 0
            self.u_lost[u] = 0
            self.u_lat_sum[u] = 0.0
            self.u_lat_max[u] = 0.0
            self.handoffs_out += 1
        self._pending_handoffs.clear()
        return out

    def apply_inbox(self, inbox: ShardInbox) -> None:
        """Apply ghost refreshes + arriving users (start of an epoch)."""
        for gid in sorted(inbox.ghost_updates):
            local = self._node_local.get(gid)
            if local is None or not self.n_ghost[local]:
                continue
            load, alive = inbox.ghost_updates[gid]
            self.n_load[local] = load
            self.n_alive[local] = alive
        if not inbox.migrations:
            return
        arrivals = sorted(inbox.migrations, key=lambda r: r.user_gid)
        base = self.u_gid.size
        self._append_users(arrivals)
        for i, record in enumerate(arrivals):
            self._admit_migrant(base + i, record)
            self.handoffs_in += 1

    def _append_users(self, records: List[MigrationRecord]) -> None:
        gids = np.array([r.user_gid for r in records], dtype=np.int64)
        lats = np.array([r.lat for r in records])
        lons = np.array([r.lon for r in records])
        self.u_gid = np.concatenate([self.u_gid, gids])
        self.u_lat = np.concatenate([self.u_lat, lats])
        self.u_lon = np.concatenate([self.u_lon, lons])
        self.u_phase = np.concatenate(
            [self.u_phase, np.array([r.phase_ms for r in records])]
        )
        self.u_cell = np.concatenate(
            [
                self.u_cell,
                geohash.encode_cells(lats, lons, self.spec.effective_cell_precision),
            ]
        )
        self.u_node = np.concatenate(
            [self.u_node, np.full(len(records), -1, dtype=np.int64)]
        )
        self.u_base = np.concatenate([self.u_base, np.zeros(len(records))])
        self.u_active = np.concatenate(
            [self.u_active, np.ones(len(records), dtype=bool)]
        )
        self.u_join_tick = np.concatenate(
            [self.u_join_tick, np.full(len(records), self._tick_index, dtype=np.int64)]
        )
        self.u_pending = np.concatenate(
            [self.u_pending, np.full(len(records), -1, dtype=np.int64)]
        )
        self.u_frames = np.concatenate(
            [self.u_frames, np.array([r.frames_done for r in records], dtype=np.int64)]
        )
        self.u_lost = np.concatenate(
            [self.u_lost, np.array([r.frames_lost for r in records], dtype=np.int64)]
        )
        self.u_lat_sum = np.concatenate(
            [self.u_lat_sum, np.array([r.latency_sum_ms for r in records])]
        )
        self.u_lat_max = np.concatenate(
            [self.u_lat_max, np.array([r.latency_max_ms for r in records])]
        )

    def _admit_migrant(self, u: int, record: MigrationRecord) -> None:
        """Attach an arriving user to its handoff target (or re-select
        locally if the target died in transit)."""
        self.control_ops += 1
        target = self._node_local.get(record.target_gid)
        if target is not None and self.n_alive[target] and not self.n_ghost[target]:
            self._attach(u, target)
            if self.trace.enabled:
                self.trace.emit(
                    JoinAccept(self.now_ms, self._user_name(u), self._node_name(target))
                )
            return
        # Target gone: fall back to a local re-selection round.
        best = self._best_candidate(u, exclude=-1, include_ghosts=False)
        if best < 0:
            self.uncovered_failures += 1
            self.trace.emit(UncoveredFailure(self.now_ms, self._user_name(u)))
            return
        self._attach(u, best)
        if self.trace.enabled:
            self.trace.emit(
                JoinAccept(self.now_ms, self._user_name(u), self._node_name(best))
            )

    # ------------------------------------------------------------------
    # Control plane (shared by both stepping modes)
    # ------------------------------------------------------------------
    def _control(self, k: int) -> None:
        t = k * self.tick_ms
        if k == 0:
            self._initial_attach()
        actions = self._agenda.pop(k, None)
        if actions:
            fails = sorted(n for kind, n in actions if kind == "fail")
            detects = sorted(n for kind, n in actions if kind == "detect")
            for n in fails:
                self._fail_node(n, k, t)
            for n in detects:
                self._detect_failure(n, t)
        if k > 0:
            self._selection_round(k, t)

    def _fail_node(self, n: int, k: int, t: float) -> None:
        if not self.n_alive[n]:
            return
        self.control_ops += 1
        self.n_alive[n] = False
        self.trace.emit(NodeFail(t, self._node_name(n)))
        self._agenda.setdefault(k + self._detect_ticks, []).append(("detect", n))

    def _detect_failure(self, n: int, t: float) -> None:
        """Clients of a dead node notice at the quantized detection tick
        and walk to a live candidate (the per-client fallback path)."""
        for u in np.flatnonzero(self.u_node == n):
            self.control_ops += 1
            best = self._best_candidate(int(u), exclude=n, include_ghosts=False)
            if best < 0:
                self.u_node[u] = -1
                self.uncovered_failures += 1
                self.trace.emit(UncoveredFailure(t, self._user_name(int(u))))
                continue
            self.covered_failovers += 1
            self.trace.emit(
                CoveredFailover(t, self._user_name(int(u)), self._node_name(n))
            )
            # The dead node's bookkeeping load is irrelevant; just move.
            self.u_node[u] = -1
            self._attach(int(u), best)

    def _selection_round(self, k: int, t: float) -> None:
        phase = k % self._period_ticks
        due = np.flatnonzero(
            self.u_active
            & (self.u_node >= 0)
            & (self.u_pending < 0)
            & (self.u_gid % self._period_ticks == phase)
        )
        for u in due:
            if k - self.u_join_tick[u] < self._dwell_ticks:
                continue
            self._reselect(int(u), k, t)

    def _reselect(self, u: int, k: int, t: float) -> None:
        self.control_ops += 1
        cur = int(self.u_node[u])
        best = self._best_candidate(u, exclude=-1, include_ghosts=True)
        if best < 0 or best == cur:
            return
        wait = self._node_wait()
        cand_score = self._base_to(u, best) + wait[best]
        cur_score = self.u_base[u] + wait[cur]
        # Hysteresis: absolute + relative margin, as in SelectionMachine.
        threshold = cur_score * (1.0 - self.config.switch_penalty_fraction)
        if cand_score >= min(threshold, cur_score - self.config.switch_penalty_ms):
            return
        if self.n_ghost[best]:
            to_shard = self._ghost_shard[best]
            self.u_pending[u] = best
            self._pending_handoffs.append(u)
            self.trace.emit(
                ShardHandoff(
                    t,
                    self._user_name(u),
                    self.shard_id,
                    to_shard,
                    self._node_name(best),
                )
            )
            return
        self.switches += 1
        self.trace.emit(
            Switch(t, self._user_name(u), self._node_name(cur), self._node_name(best))
        )
        self.n_load[cur] -= self.fps
        self.u_node[u] = -1
        self._attach(u, best)
        self.u_join_tick[u] = k

    # ------------------------------------------------------------------
    # Attachment & candidate machinery
    # ------------------------------------------------------------------
    def _initial_attach(self) -> None:
        """Vectorized t=0 attach: per selection cell, rank the local
        candidates once and deal the cell's users across the TopN
        round-robin (a WRR-flavoured spread)."""
        if self.u_gid.size == 0:
            return
        cells, inverse = np.unique(self.u_cell, return_inverse=True)
        order = np.argsort(inverse, kind="stable")
        bounds = np.searchsorted(inverse[order], np.arange(cells.size + 1))
        for ci in range(cells.size):
            users = order[bounds[ci] : bounds[ci + 1]]
            self.control_ops += len(users)
            cand = self._candidates(int(cells[ci]))
            cand = cand[self.n_alive[cand] & ~self.n_ghost[cand]]
            if cand.size == 0:
                self.unattached_initial += len(users)
                continue
            # Rank candidates by predicted latency from the cohort's
            # centroid; deal users over the best TopN.
            clat = float(np.mean(self.u_lat[users]))
            clon = float(np.mean(self.u_lon[users]))
            dist = _haversine_km(clat, clon, self.n_lat[cand], self.n_lon[cand])
            wait = self._node_wait()
            score = (
                _RTT_FLOOR_MS
                + 2.0 * dist * _MS_PER_KM * _PATH_STRETCH
                + _TIER_MS
                + self.n_service[cand]
                + wait[cand]
            )
            ranked_all = cand[np.argsort(score, kind="stable")]
            # Deal over enough of the ranking to carry the cohort's
            # offered load with ~25% headroom (each user individually
            # only ever sees a TopN, but a cohort of same-cell users
            # collectively spreads exactly like the manager's WRR would
            # spread them) — never fewer than TopN nodes.
            capacity = 1000.0 / self.n_service[ranked_all]
            demand = users.size * self.fps
            need = int(np.searchsorted(np.cumsum(capacity), demand * 1.25)) + 1
            width = max(self.config.top_n, min(need, ranked_all.size))
            ranked = ranked_all[: min(width, ranked_all.size)]
            chosen = ranked[np.arange(users.size) % ranked.size]
            self.u_node[users] = chosen
            self.u_base[users] = self._base_vec(users, chosen)
            np.add.at(self.n_load, chosen, self.fps)
            if self.trace.enabled:
                for idx, u in enumerate(users):
                    self.trace.emit(
                        JoinAccept(
                            0.0,
                            self._user_name(int(u)),
                            self._node_name(int(chosen[idx])),
                        )
                    )

    def _attach(self, u: int, n: int) -> None:
        self.u_node[u] = n
        self.u_base[u] = self._base_to(u, n)
        self.n_load[n] += self.fps
        self.u_join_tick[u] = self._tick_index

    def _base_vec(self, users: np.ndarray, nodes: np.ndarray) -> np.ndarray:
        """Per-frame base latency: expected RTT + transfer + service."""
        dist = _haversine_km(
            self.u_lat[users], self.u_lon[users], self.n_lat[nodes], self.n_lon[nodes]
        )
        return (
            _RTT_FLOOR_MS
            + 2.0 * dist * _MS_PER_KM * _PATH_STRETCH
            + _TIER_MS
            + self.spec.frame_transfer_ms
            + self.n_service[nodes]
        )

    def _base_to(self, u: int, n: int) -> float:
        return float(
            self._base_vec(
                np.array([u], dtype=np.int64), np.array([n], dtype=np.int64)
            )[0]
        )

    def _candidates(self, cell: int) -> np.ndarray:
        """Ascending local node indices in the 3x3 cell neighborhood."""
        cached = self._cell_cands.get(cell)
        if cached is not None:
            return cached
        block = geohash.cell_neighborhood(
            np.array([cell], dtype=np.uint64), self.spec.effective_cell_precision
        )[0]
        parts = [
            self._cell_nodes[int(c)]
            for c in sorted(set(int(c) for c in block))
            if int(c) in self._cell_nodes
        ]
        if parts:
            cand = np.sort(np.concatenate(parts))
        else:
            cand = np.empty(0, dtype=np.int64)
        self._cell_cands[cell] = cand
        return cand

    def _best_candidate(self, u: int, exclude: int, include_ghosts: bool) -> int:
        """Lowest-predicted-latency live candidate for user ``u``
        (stable tie-break on ascending local index), or -1."""
        cand = self._candidates(int(self.u_cell[u]))
        if cand.size == 0:
            return -1
        mask = self.n_alive[cand]
        if exclude >= 0:
            mask &= cand != exclude
        if not include_ghosts:
            mask = mask & ~self.n_ghost[cand]
        cand = cand[mask]
        if cand.size == 0:
            return -1
        wait = self._node_wait()
        score = self._base_vec(np.full(cand.size, u, dtype=np.int64), cand) + wait[cand]
        return int(cand[int(np.argmin(score))])

    def _node_wait(self) -> np.ndarray:
        """Analytic M/D/1 mean queue wait per node at current load."""
        rho = np.clip(self.n_load * self.n_service / 1000.0, 0.0, _RHO_CAP)
        return self.n_service * rho / (2.0 * (1.0 - rho))

    # ------------------------------------------------------------------
    # Frame advancement — the only mode-dependent code
    # ------------------------------------------------------------------
    def _frame_counts(self, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Per-user (first frame index, count) of frames due in (t0, t1]."""
        m_hi = np.floor((t1 - self.u_phase) / self.interval_ms).astype(np.int64)
        m_lo = np.floor((t0 - self.u_phase) / self.interval_ms).astype(np.int64) + 1
        counts = np.maximum(m_hi - m_lo + 1, 0)
        return m_lo, counts

    def _advance_frames(self, k: int) -> None:
        t0 = k * self.tick_ms
        t1 = t0 + self.tick_ms
        wait = self._node_wait()
        self._window_wait = wait
        if self.batched:
            if self.trace.enabled:
                self._advance_batched_traced(t0, t1, wait)
            else:
                self._advance_batched(t0, t1, wait)
        else:
            self._advance_per_client(t0, t1, wait)

    def _advance_batched(self, t0: float, t1: float, wait: np.ndarray) -> None:
        """The cohort fast path: whole-population array arithmetic."""
        m_lo, counts = self._frame_counts(t0, t1)
        counts = np.where(self.u_active, counts, 0)
        self.frames_advanced += int(counts.sum())
        att = counts > 0
        attached = att & (self.u_node >= 0)
        # Unattached users lose their due frames.
        lost_unatt = att & (self.u_node < 0)
        self.u_lost[lost_unatt] += counts[lost_unatt]
        if not attached.any():
            return
        idx = np.flatnonzero(attached)
        nodes = self.u_node[idx]
        alive = self.n_alive[nodes]
        lat = self.u_base[idx] + wait[nodes]
        kcnt = counts[idx]
        done = idx[alive]
        self.u_frames[done] += kcnt[alive]
        self.u_lat_sum[done] += kcnt[alive] * lat[alive]
        self.u_lat_max[done] = np.maximum(self.u_lat_max[done], lat[alive])
        dead = idx[~alive]
        self.u_lost[dead] += kcnt[~alive]

    def _advance_batched_traced(
        self, t0: float, t1: float, wait: np.ndarray
    ) -> None:
        """Batched mode with capture on: same stat arithmetic as the
        array path (cohort-summed), plus one FrameDone per frame."""
        m_lo, counts = self._frame_counts(t0, t1)
        emit = self.trace.emit
        for u in np.flatnonzero(self.u_active & (counts > 0)):
            kcnt = int(counts[u])
            self.frames_advanced += kcnt
            node = int(self.u_node[u])
            if node < 0:
                self.u_lost[u] += kcnt
                continue
            if not self.n_alive[node]:
                self.u_lost[u] += kcnt
                continue
            lat = float(self.u_base[u]) + float(wait[node])
            self.u_frames[u] += kcnt
            self.u_lat_sum[u] += kcnt * lat
            self.u_lat_max[u] = max(float(self.u_lat_max[u]), lat)
            uname = self._user_name(int(u))
            nname = self._node_name(node)
            lo = int(m_lo[u])
            phase = float(self.u_phase[u])
            for m in range(lo, lo + kcnt):
                due = phase + m * self.interval_ms
                emit(FrameDone(due + lat, uname, nname, m, due, lat))

    def _advance_per_client(self, t0: float, t1: float, wait: np.ndarray) -> None:
        """The reference path: one pooled kernel event per frame through
        the real EventQueue (what cohort batching replaces)."""
        m_lo, counts = self._frame_counts(t0, t1)
        queue = self._queue
        pool = self._pool
        for u in np.flatnonzero(self.u_active & (counts > 0)):
            phase = float(self.u_phase[u])
            lo = int(m_lo[u])
            uu = int(u)
            for m in range(lo, lo + int(counts[u])):
                due = phase + m * self.interval_ms
                queue.push_pooled(
                    pool,
                    due,
                    lambda uu=uu, m=m, due=due: self._frame_event(uu, m, due),
                    label="frame",
                )
        while True:
            event = queue.pop_until(t1)
            if event is None:
                break
            event.callback()
            pool.release(event)

    def _frame_event(self, u: int, m: int, due: float) -> None:
        self.frames_advanced += 1
        node = int(self.u_node[u])
        if node < 0 or not self.n_alive[node]:
            self.u_lost[u] += 1
            return
        assert self._window_wait is not None
        lat = float(self.u_base[u]) + float(self._window_wait[node])
        self.u_frames[u] += 1
        self.u_lat_sum[u] += lat
        self.u_lat_max[u] = max(float(self.u_lat_max[u]), lat)
        if self.trace.enabled:
            self.trace.emit(
                FrameDone(
                    due + lat, self._user_name(u), self._node_name(node), m, due, lat
                )
            )

    # ------------------------------------------------------------------
    # Naming & reporting
    # ------------------------------------------------------------------
    def _node_name(self, local: int) -> str:
        return f"n{self.n_gid[local]}"

    def _user_name(self, local: int) -> str:
        return f"u{self.u_gid[local]}"

    def report(self) -> MetroShardReport:
        active = self.u_active
        return MetroShardReport(
            shard_id=self.shard_id,
            nodes=int((~self.n_ghost).sum()),
            users=int(active.sum()),
            frames_done=int(self.u_frames[active].sum()),
            frames_lost=int(self.u_lost[active].sum()),
            switches=self.switches,
            covered_failovers=self.covered_failovers,
            uncovered_failures=self.uncovered_failures,
            handoffs_out=self.handoffs_out,
            handoffs_in=self.handoffs_in,
            unattached_initial=self.unattached_initial,
            latency_sum_ms=float(self.u_lat_sum[active].sum()),
            latency_max_ms=float(self.u_lat_max[active].max())
            if active.any()
            else 0.0,
            frames_advanced=self.frames_advanced,
            control_ops=self.control_ops,
            pool_acquired=self._pool.acquired,
            pool_recycled=self._pool.recycled,
            trace_events=list(self.trace.events()),
        )
