"""Typed scenario specs for metro-scale simulation.

:class:`MetroSpec` describes a synthetic metro deployment — how many
volunteer nodes and AR users, spread over what disc — without naming any
individual entity; :class:`ShardSpec` describes how to partition it into
independent geohash-keyed shard kernels. Both are frozen value objects:
the same spec + seed always generates the same population, which is the
foundation of every determinism guarantee the metro kernel makes.

Population generation is fully vectorized (`numpy`): positions are
uniform over the disc (sqrt-radius sampling, the same distribution as
:func:`repro.geo.region.random_point` draws one-at-a-time), hardware
cycles through the paper's Table II volunteer catalog, and per-user
frame phases are drawn from one seeded generator. A million-endpoint
population builds in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import ceil, cos, radians
from typing import Optional

import numpy as np

from repro.core.config import SystemConfig
from repro.geo import geohash
from repro.geo.point import GeoPoint
from repro.geo.region import MSP_CENTER
from repro.nodes.hardware import VOLUNTEER_PROFILES
from repro.sim.random import derive_seed

__all__ = ["MetroSpec", "ShardSpec", "MetroPopulation", "build_population"]

#: km per degree of latitude (matches GeoPoint.offset_km).
_KM_PER_DEG_LAT = 111.32


@dataclass(frozen=True)
class ShardSpec:
    """How to partition a metro into independent shard kernels.

    Attributes:
        by: partition key; only ``"geohash"`` is defined. A shard owns a
            deterministic set of geohash prefix cells (sorted cells,
            round-robin over ``count``).
        count: number of shard kernels. 1 disables sharding (and is
            bit-identical to the unsharded kernel — tested).
        workers: worker processes stepping shards (forked). 1 steps the
            shards serially in-process; results are identical either
            way because shards only communicate at epoch boundaries.
        precision: geohash character length of the shard prefix cells.
            None derives ``selection cell precision - 1`` (one character
            coarser than the candidate-lookup cells, so every selection
            cell has exactly one owning shard).
        boundary_epoch_ms: period of the cross-shard boundary channel
            (ghost-load refresh + user handoffs). Must be a whole
            multiple of the kernel tick; validated at kernel build.
    """

    by: str = "geohash"
    count: int = 1
    workers: int = 1
    precision: Optional[int] = None
    boundary_epoch_ms: float = 1_000.0

    def __post_init__(self) -> None:
        if self.by != "geohash":
            raise ValueError(f"only by='geohash' sharding is defined, got {self.by!r}")
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1: {self.count}")
        if self.workers < 1:
            raise ValueError(f"shard workers must be >= 1: {self.workers}")
        if self.precision is not None and not 1 <= self.precision <= 12:
            raise ValueError(f"shard precision must be in 1..12: {self.precision}")
        if self.boundary_epoch_ms <= 0:
            raise ValueError(
                f"boundary_epoch_ms must be positive: {self.boundary_epoch_ms}"
            )

    @classmethod
    def from_config(cls, config: SystemConfig) -> "ShardSpec":
        """The shard shape implied by a :class:`SystemConfig`."""
        return cls(
            count=config.metro_shards,
            workers=config.shard_workers,
            boundary_epoch_ms=config.boundary_epoch_ms,
        )


@dataclass(frozen=True)
class MetroSpec:
    """A synthetic metro-scale deployment.

    Attributes:
        nodes: volunteer edge-node count.
        users: AR user count.
        region_km: radius of the deployment disc.
        center: disc center (defaults to the paper's MSP metro).
        fps: fixed offloading rate of every user (the metro kernel runs
            the steady full-rate workload; per-user adaptation is the
            high-fidelity kernel's job).
        frame_transfer_ms: uplink+downlink payload transfer per frame,
            folded into each frame's base latency (0.02 MB at ~40 Mbps
            round trip by default).
        cell_precision: geohash length of the candidate-lookup cells.
            None picks 5 (~4.9 km cells) for metro-sized regions and 6
            (~1.2 km) for very small ones.
        shard: the partition shape (:class:`ShardSpec`).
    """

    nodes: int
    users: int
    region_km: float = 40.0
    center: GeoPoint = MSP_CENTER
    fps: float = 10.0
    frame_transfer_ms: float = 8.0
    cell_precision: Optional[int] = None
    shard: ShardSpec = field(default_factory=ShardSpec)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1: {self.nodes}")
        if self.users < 1:
            raise ValueError(f"users must be >= 1: {self.users}")
        if self.region_km <= 0:
            raise ValueError(f"region_km must be positive: {self.region_km}")
        if self.fps <= 0:
            raise ValueError(f"fps must be positive: {self.fps}")
        if self.frame_transfer_ms < 0:
            raise ValueError(
                f"frame_transfer_ms must be >= 0: {self.frame_transfer_ms}"
            )
        if self.cell_precision is not None and not 1 <= self.cell_precision <= 12:
            raise ValueError(
                f"cell_precision must be in 1..12: {self.cell_precision}"
            )

    @property
    def effective_cell_precision(self) -> int:
        """The candidate-lookup cell precision actually used."""
        if self.cell_precision is not None:
            return self.cell_precision
        return 5 if self.region_km > 3.0 else 6

    @property
    def effective_shard_precision(self) -> int:
        """The shard prefix precision actually used (>= 1)."""
        if self.shard.precision is not None:
            if self.shard.precision > self.effective_cell_precision:
                raise ValueError(
                    "shard precision must be coarser than (<=) the selection "
                    f"cell precision ({self.effective_cell_precision}), got "
                    f"{self.shard.precision}"
                )
            return self.shard.precision
        return max(1, self.effective_cell_precision - 1)

    @property
    def interval_ms(self) -> float:
        """Per-user frame interval."""
        return 1000.0 / self.fps

    def with_shard(self, shard: ShardSpec) -> "MetroSpec":
        """Copy with a different partition shape."""
        return replace(self, shard=shard)


@dataclass
class MetroPopulation:
    """The generated entity arrays of one :class:`MetroSpec` + seed.

    Index ``i`` of the node arrays is node ``n{i}`` everywhere (traces,
    handoffs, failure schedules); likewise user arrays and ``u{i}``.
    """

    node_lat: np.ndarray
    node_lon: np.ndarray
    #: Effective single-server service time (base_frame_ms / parallelism).
    node_service_ms: np.ndarray
    #: Sustainable frames/second per node.
    node_capacity_fps: np.ndarray
    user_lat: np.ndarray
    user_lon: np.ndarray
    #: First-frame offset within the frame interval, in [0, interval).
    user_phase_ms: np.ndarray
    #: Selection cells (uint64 geohash cell ids at cell_precision).
    node_cell: np.ndarray
    user_cell: np.ndarray
    cell_precision: int

    @property
    def nodes(self) -> int:
        return int(self.node_lat.size)

    @property
    def users(self) -> int:
        return int(self.user_lat.size)


def _disc_points(
    rng: np.random.Generator, count: int, center: GeoPoint, radius_km: float
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform points over the disc, as (lat, lon) degree arrays.

    Same local-tangent-plane math as ``GeoPoint.offset_km``: sqrt-radius
    times a uniform bearing, converted with the cos-latitude longitude
    scale at the disc center.
    """
    r = radius_km * np.sqrt(rng.random(count))
    theta = rng.random(count) * (2.0 * np.pi)
    north = r * np.cos(theta)
    east = r * np.sin(theta)
    lat = center.lat + north / _KM_PER_DEG_LAT
    lon = center.lon + east / (_KM_PER_DEG_LAT * cos(radians(center.lat)))
    return lat, lon


def build_population(spec: MetroSpec, seed: int) -> MetroPopulation:
    """Generate the deterministic entity arrays for ``spec``.

    Node and user draws come from independently derived streams, so the
    node layout for a given (spec, seed) is identical regardless of the
    user count and vice versa.
    """
    node_rng = np.random.default_rng(derive_seed(seed, "metro.nodes"))
    user_rng = np.random.default_rng(derive_seed(seed, "metro.users"))

    node_lat, node_lon = _disc_points(node_rng, spec.nodes, spec.center, spec.region_km)
    base = np.array([p.base_frame_ms for p in VOLUNTEER_PROFILES])
    par = np.array([float(p.parallelism) for p in VOLUNTEER_PROFILES])
    profile_idx = np.arange(spec.nodes) % len(VOLUNTEER_PROFILES)
    node_service = base[profile_idx] / par[profile_idx]
    node_capacity = par[profile_idx] * 1000.0 / base[profile_idx]

    user_lat, user_lon = _disc_points(user_rng, spec.users, spec.center, spec.region_km)
    user_phase = user_rng.random(spec.users) * spec.interval_ms

    precision = spec.effective_cell_precision
    return MetroPopulation(
        node_lat=node_lat,
        node_lon=node_lon,
        node_service_ms=node_service,
        node_capacity_fps=node_capacity,
        user_lat=user_lat,
        user_lon=user_lon,
        user_phase_ms=user_phase,
        node_cell=geohash.encode_cells(node_lat, node_lon, precision),
        user_cell=geohash.encode_cells(user_lat, user_lon, precision),
        cell_precision=precision,
    )


def quantize_ticks(duration_ms: float, tick_ms: float) -> int:
    """``duration_ms`` rounded *up* to whole ticks (minimum 1).

    The metro kernel quantizes every control-plane delay (failure
    detection, dwell, probing period) to tick boundaries — that
    quantization is what makes cohort-batched and per-client stepping
    emit identical traces.
    """
    return max(1, ceil(duration_ms / tick_ms - 1e-9))
