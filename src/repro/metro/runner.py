"""Driving a metro simulation: epoch loop, shard workers, reporting.

:class:`MetroSimulation` owns the whole-run lifecycle: generate the
population, plan the partition, build one :class:`~repro.metro.kernel.
MetroKernel` per shard, then alternate *step an epoch* / *exchange the
boundary channel* until the horizon. Shards share no mutable state and
only communicate through the routed :class:`~repro.metro.kernel.
ShardOutbox`/:class:`~repro.metro.kernel.ShardInbox` values, so serial
in-process stepping and forked worker processes produce identical
results — workers (``ShardSpec.workers > 1``) are purely a wall-clock
optimization, reusing the sweep executor's fork-first discipline.

Determinism contract (see DESIGN.md §11): for a fixed (spec, config
seed, shard count) the full trace-event multiset and every counter are
reproducible; with ``count=1`` the run is bit-identical, event for
event, to stepping an unsharded :class:`MetroKernel` directly.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from math import ceil
from multiprocessing.connection import Connection
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.metro.kernel import (
    MetroKernel,
    MetroShardReport,
    ShardInbox,
    ShardOutbox,
)
from repro.metro.shard import ShardPlan, plan_shards
from repro.metro.spec import MetroSpec, ShardSpec, build_population, quantize_ticks
from repro.obs.events import TraceEvent
from repro.obs.tracer import Tracer

__all__ = ["MetroSimulation", "MetroReport"]


@dataclass
class MetroReport:
    """Aggregated outcome of one metro run."""

    spec_nodes: int
    spec_users: int
    sim_seconds: float
    shards: int
    workers: int
    batched: bool
    frames_done: int
    frames_lost: int
    switches: int
    covered_failovers: int
    uncovered_failures: int
    handoffs: int
    unattached_initial: int
    latency_sum_ms: float
    latency_max_ms: float
    frames_advanced: int
    control_ops: int
    pool_acquired: int
    pool_recycled: int
    wall_s: float
    shard_reports: List[MetroShardReport] = field(default_factory=list)
    trace_events: List[TraceEvent] = field(default_factory=list)

    @property
    def mean_latency_ms(self) -> float:
        if self.frames_done == 0:
            raise ValueError("no completed frames")
        return self.latency_sum_ms / self.frames_done

    @property
    def events_processed(self) -> int:
        """Frames advanced plus control-plane operations."""
        return self.frames_advanced + self.control_ops

    @property
    def wall_s_per_sim_s(self) -> float:
        return self.wall_s / self.sim_seconds

    @property
    def events_per_wall_s(self) -> float:
        return self.events_processed / self.wall_s if self.wall_s > 0 else 0.0


def _route_outboxes(
    plan: ShardPlan, outboxes: List[ShardOutbox]
) -> List[ShardInbox]:
    """Turn per-shard outboxes into per-shard inboxes.

    Ghost refreshes go to every shard advertising that gid; migrations
    go to the shard owning the target node. Inbox contents are sorted
    (by gid) by the kernel on application, so routing order never
    matters.
    """
    all_exports: Dict[int, Tuple[float, bool]] = {}
    for out in outboxes:
        all_exports.update(out.exports)
    inboxes = [ShardInbox() for _ in range(plan.count)]
    for g in range(plan.count):
        for gid in plan.ghost_gids[g]:
            value = all_exports.get(int(gid))
            if value is not None:
                inboxes[g].ghost_updates[int(gid)] = value
    for out in outboxes:
        for record in out.migrations:
            dest = int(plan.node_shard[record.target_gid])
            inboxes[dest].migrations.append(record)
    return inboxes


def _worker_loop(kernel: MetroKernel, conn: "Connection") -> None:
    """Child process: step on command, exchange epochs, report, exit."""
    while True:
        msg = conn.recv()
        kind = msg[0]
        if kind == "step":
            kernel.step_to(msg[1])
            conn.send(kernel.finish_epoch())
        elif kind == "inbox":
            kernel.apply_inbox(msg[1])
            conn.send("ok")
        elif kind == "report":
            conn.send(kernel.report())
            conn.close()
            return


class MetroSimulation:
    """Build and run a (possibly sharded) metro-scale simulation.

    Args:
        spec: deployment shape. Its ``shard`` field governs the
            partition; when it is the default single shard but the
            config asks for more (``metro_shards > 1``), the config's
            shard shape wins — so ``SystemConfig`` alone can turn on
            sharding.
        config: system tunables (defaults to ``SystemConfig()``).
        capture_trace: capture the typed trace-event stream per shard
            (sized for tests/smokes, not for million-user runs).
        trace_capacity: per-shard ring-buffer size when capturing.
    """

    def __init__(
        self,
        spec: MetroSpec,
        config: Optional[SystemConfig] = None,
        *,
        capture_trace: bool = False,
        trace_capacity: int = 1 << 20,
    ) -> None:
        self.config = config if config is not None else SystemConfig()
        if spec.shard.count == 1 and self.config.metro_shards > 1:
            spec = spec.with_shard(ShardSpec.from_config(self.config))
        self.spec = spec
        self.capture_trace = capture_trace
        self.trace_capacity = trace_capacity
        self._fail_schedule: List[Tuple[int, float]] = []
        epoch_ticks = self.spec.shard.boundary_epoch_ms / self.config.cohort_tick_ms
        if abs(epoch_ticks - round(epoch_ticks)) > 1e-9 or epoch_ticks < 1:
            raise ValueError(
                "boundary_epoch_ms must be a whole multiple of cohort_tick_ms "
                f"(got {self.spec.shard.boundary_epoch_ms} / "
                f"{self.config.cohort_tick_ms})"
            )

    def schedule_node_fail(self, node_gid: int, at_ms: float) -> None:
        """Kill node ``n{node_gid}`` at (the tick boundary covering)
        ``at_ms``."""
        self._fail_schedule.append((int(node_gid), float(at_ms)))

    # ------------------------------------------------------------------
    def build_kernels(self) -> Tuple[ShardPlan, List[MetroKernel]]:
        """Generate the population and construct one kernel per shard."""
        population = build_population(self.spec, self.config.seed)
        plan = plan_shards(self.spec, population)
        kernels: List[MetroKernel] = []
        for g in range(plan.count):
            tracer = (
                Tracer(enabled=True, capacity=self.trace_capacity)
                if self.capture_trace
                else None
            )
            kernels.append(
                MetroKernel(
                    self.config,
                    self.spec,
                    population,
                    shard_id=plan.shard_ids[g],
                    node_gids=plan.node_gids[g],
                    user_gids=plan.user_gids[g],
                    ghost_gids=plan.ghost_gids[g],
                    ghost_shards=[plan.shard_ids[o] for o in plan.ghost_owners[g]],
                    export_gids=plan.export_gids[g],
                    tracer=tracer,
                )
            )
        for gid, at_ms in self._fail_schedule:
            kernels[int(plan.node_shard[gid])].schedule_node_fail(gid, at_ms)
        return plan, kernels

    def run(self, sim_seconds: float) -> MetroReport:
        """Run for ``sim_seconds`` (rounded up to whole ticks)."""
        if sim_seconds <= 0:
            raise ValueError(f"sim_seconds must be positive: {sim_seconds}")
        started = time.perf_counter()
        plan, kernels = self.build_kernels()
        tick = self.config.cohort_tick_ms
        end_ms = quantize_ticks(sim_seconds * 1000.0, tick) * tick
        epoch_ms = self.spec.shard.boundary_epoch_ms
        epochs = int(ceil(end_ms / epoch_ms - 1e-9))
        boundaries = [min((e + 1) * epoch_ms, end_ms) for e in range(epochs)]

        workers = self.spec.shard.workers
        use_workers = (
            workers > 1
            and plan.count > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        if use_workers:
            reports = self._run_workers(plan, kernels, boundaries)
        else:
            reports = self._run_serial(plan, kernels, boundaries)

        wall = time.perf_counter() - started
        return self._merge(plan, reports, sim_seconds, wall)

    def _run_serial(
        self,
        plan: ShardPlan,
        kernels: List[MetroKernel],
        boundaries: List[float],
    ) -> List[MetroShardReport]:
        for t_next in boundaries:
            outboxes = []
            for kernel in kernels:
                kernel.step_to(t_next)
                outboxes.append(kernel.finish_epoch())
            for kernel, inbox in zip(kernels, _route_outboxes(plan, outboxes)):
                kernel.apply_inbox(inbox)
        return [kernel.report() for kernel in kernels]

    def _run_workers(
        self,
        plan: ShardPlan,
        kernels: List[MetroKernel],
        boundaries: List[float],
    ) -> List[MetroShardReport]:
        """Step each shard in a forked worker, barrier-synchronized at
        every boundary epoch. Identical results to serial stepping:
        shards exchange exactly the same routed inboxes."""
        context = multiprocessing.get_context("fork")
        pipes = []
        procs = []
        try:
            for kernel in kernels:
                parent, child = context.Pipe()
                proc = context.Process(
                    target=_worker_loop, args=(kernel, child), daemon=True
                )
                proc.start()
                child.close()
                pipes.append(parent)
                procs.append(proc)
            for t_next in boundaries:
                for pipe in pipes:
                    pipe.send(("step", t_next))
                outboxes = [pipe.recv() for pipe in pipes]
                for pipe, inbox in zip(pipes, _route_outboxes(plan, outboxes)):
                    pipe.send(("inbox", inbox))
                for pipe in pipes:
                    pipe.recv()
            for pipe in pipes:
                pipe.send(("report",))
            return [pipe.recv() for pipe in pipes]
        finally:
            for pipe in pipes:
                pipe.close()
            for proc in procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - hung worker
                    proc.terminate()

    def _merge(
        self,
        plan: ShardPlan,
        reports: List[MetroShardReport],
        sim_seconds: float,
        wall_s: float,
    ) -> MetroReport:
        trace: List[TraceEvent] = []
        for report in reports:
            trace.extend(report.trace_events)
        return MetroReport(
            spec_nodes=self.spec.nodes,
            spec_users=self.spec.users,
            sim_seconds=sim_seconds,
            shards=plan.count,
            workers=self.spec.shard.workers,
            batched=self.config.cohort_batching,
            frames_done=sum(r.frames_done for r in reports),
            frames_lost=sum(r.frames_lost for r in reports),
            switches=sum(r.switches for r in reports),
            covered_failovers=sum(r.covered_failovers for r in reports),
            uncovered_failures=sum(r.uncovered_failures for r in reports),
            handoffs=sum(r.handoffs_out for r in reports),
            unattached_initial=sum(r.unattached_initial for r in reports),
            latency_sum_ms=sum(r.latency_sum_ms for r in reports),
            latency_max_ms=max((r.latency_max_ms for r in reports), default=0.0),
            frames_advanced=sum(r.frames_advanced for r in reports),
            control_ops=sum(r.control_ops for r in reports),
            pool_acquired=sum(r.pool_acquired for r in reports),
            pool_recycled=sum(r.pool_recycled for r in reports),
            wall_s=wall_s,
            shard_reports=reports,
            trace_events=trace,
        )

