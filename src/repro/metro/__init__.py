"""Metro-scale simulation: cohort-batched, geohash-sharded kernels.

The fast path for population-scale questions (10^5 nodes, 10^6 users):

- :mod:`repro.metro.spec` — typed :class:`MetroSpec`/:class:`ShardSpec`
  scenario values + deterministic population generation.
- :mod:`repro.metro.kernel` — the tick-quantized shard kernel with two
  equivalent stepping modes (cohort-batched arrays vs. one pooled event
  per frame).
- :mod:`repro.metro.shard` — geohash prefix partitioning, ghost/export
  planning.
- :mod:`repro.metro.runner` — :class:`MetroSimulation`: the epoch loop,
  boundary-channel routing, optional forked shard workers, reporting.

See DESIGN.md §11 for the determinism contract and the divergences from
the high-fidelity :class:`~repro.core.system.EdgeSystem` kernel.
"""

from repro.metro.kernel import MetroKernel, MetroShardReport
from repro.metro.runner import MetroReport, MetroSimulation
from repro.metro.shard import ShardPlan, plan_shards
from repro.metro.spec import MetroPopulation, MetroSpec, ShardSpec, build_population

__all__ = [
    "MetroKernel",
    "MetroShardReport",
    "MetroReport",
    "MetroSimulation",
    "MetroSpec",
    "ShardSpec",
    "MetroPopulation",
    "ShardPlan",
    "build_population",
    "plan_shards",
]
