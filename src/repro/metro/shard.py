"""Geohash partitioning of a metro population into shard kernels.

Ownership model:

- Every geohash **prefix cell** (``ShardSpec.precision`` characters, one
  coarser than the selection cells by default) is owned by exactly one
  shard: the sorted list of populated prefixes is dealt round-robin over
  ``ShardSpec.count``. Because a selection cell's prefix is a pure
  integer shift of its cell id, every node, user and selection cell has
  exactly one owning shard.
- A node whose 3x3 selection-cell neighborhood touches a cell owned by
  another shard is **exported**: the owning shard publishes its
  authoritative (load, alive) at every boundary epoch, and the touched
  shards carry it as a read-only **ghost** advertisement that their
  users may select. Selecting a ghost triggers a user *handoff* through
  the boundary channel rather than a local attach — users are only ever
  attached to nodes their own shard owns.

With ``count=1`` the plan degenerates to "one shard owns everything,
no ghosts, no exports", which is how the ``shards=1`` bit-identity
guarantee against the unsharded kernel holds structurally rather than
by luck.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.geo import geohash
from repro.metro.spec import MetroPopulation, MetroSpec

__all__ = ["ShardPlan", "plan_shards"]


@dataclass
class ShardPlan:
    """The deterministic ownership tables of one partition."""

    shard_ids: List[str]
    #: Owning shard index per global node / user.
    node_shard: np.ndarray
    user_shard: np.ndarray
    #: Per shard: ascending owned node gids / starting user gids.
    node_gids: List[np.ndarray] = field(default_factory=list)
    user_gids: List[np.ndarray] = field(default_factory=list)
    #: Per shard: ascending ghost node gids + the owning shard of each.
    ghost_gids: List[np.ndarray] = field(default_factory=list)
    ghost_owners: List[List[int]] = field(default_factory=list)
    #: Per shard: ascending owned gids that other shards ghost.
    export_gids: List[np.ndarray] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.shard_ids)


def _prefix_groups(
    prefixes: np.ndarray, count: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sorted unique prefixes and their round-robin shard assignment."""
    unique = np.unique(prefixes)
    return unique, np.arange(unique.size, dtype=np.int64) % count


def plan_shards(spec: MetroSpec, population: MetroPopulation) -> ShardPlan:
    """Compute the ownership tables for ``spec.shard`` over a population."""
    count = spec.shard.count
    shard_ids = [f"shard{g}" for g in range(count)]
    nodes = population.nodes
    users = population.users

    if count == 1:
        return ShardPlan(
            shard_ids=shard_ids,
            node_shard=np.zeros(nodes, dtype=np.int64),
            user_shard=np.zeros(users, dtype=np.int64),
            node_gids=[np.arange(nodes, dtype=np.int64)],
            user_gids=[np.arange(users, dtype=np.int64)],
            ghost_gids=[np.empty(0, dtype=np.int64)],
            ghost_owners=[[]],
            export_gids=[np.empty(0, dtype=np.int64)],
        )

    cell_precision = population.cell_precision
    shard_precision = spec.effective_shard_precision
    shift = np.uint64(5 * (cell_precision - shard_precision))
    node_prefix = population.node_cell >> shift
    user_prefix = population.user_cell >> shift

    unique, groups = _prefix_groups(
        np.concatenate([node_prefix, user_prefix]), count
    )

    def to_group(prefix: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(unique, prefix)
        return groups[idx]

    node_shard = to_group(node_prefix)
    user_shard = to_group(user_prefix)

    # Ghost discovery: a node is exported to every *other* shard owning
    # a cell of its 3x3 selection-cell neighborhood.
    block = geohash.cell_neighborhood(population.node_cell, cell_precision)
    block_prefix = block >> shift
    idx = np.searchsorted(unique, block_prefix.reshape(-1))
    idx_clipped = np.minimum(idx, unique.size - 1)
    valid = unique[idx_clipped] == block_prefix.reshape(-1)
    block_group = np.where(valid, groups[idx_clipped], -1).reshape(block.shape)

    ghost_pairs: set[Tuple[int, int]] = set()  # (dest shard, node gid)
    own = node_shard[:, None]
    foreign = (block_group >= 0) & (block_group != own)
    for gid, dest in zip(*np.nonzero(foreign)):
        ghost_pairs.add((int(block_group[gid, dest]), int(gid)))

    ghost_gids: List[np.ndarray] = []
    ghost_owners: List[List[int]] = []
    export_sets: List[set] = [set() for _ in range(count)]
    for g in range(count):
        gids = sorted(gid for dest, gid in ghost_pairs if dest == g)
        ghost_gids.append(np.array(gids, dtype=np.int64))
        ghost_owners.append([int(node_shard[gid]) for gid in gids])
        for gid in gids:
            export_sets[int(node_shard[gid])].add(gid)

    return ShardPlan(
        shard_ids=shard_ids,
        node_shard=node_shard,
        user_shard=user_shard,
        node_gids=[
            np.flatnonzero(node_shard == g).astype(np.int64) for g in range(count)
        ],
        user_gids=[
            np.flatnonzero(user_shard == g).astype(np.int64) for g in range(count)
        ],
        ghost_gids=ghost_gids,
        ghost_owners=ghost_owners,
        export_gids=[
            np.array(sorted(export_sets[g]), dtype=np.int64) for g in range(count)
        ],
    )
