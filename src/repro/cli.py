"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                 # all available experiments
    python -m repro fig5 --seed 7        # Fig. 5 with a custom seed
    python -m repro fig9 --top-n 1 2 3   # restrict the TopN sweep
    python -m repro table3
    python -m repro qos --qos-ms 80

Every command prints the same tables the benchmark harness does; seeds
make runs reproducible. This is deliberately thin plumbing over
:mod:`repro.experiments` — anything the CLI prints, library users can
compute programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.metrics.report import format_cdf, format_table


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(seed=args.seed)


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def cmd_fig1(args: argparse.Namespace) -> None:
    from repro.experiments.network_study import run_network_study

    result = run_network_study(_config(args), probes_per_pair=args.probes)
    rows = [
        [name, s.mean_ms, s.p50_ms, s.p90_ms, s.min_ms, s.max_ms]
        for name, s in result.summaries().items()
    ]
    print(
        format_table(
            ["target class", "mean", "p50", "p90", "min", "max"],
            rows,
            title="Fig. 1 — RTT (ms) from metro users",
        )
    )


def cmd_table2(args: argparse.Namespace) -> None:
    from repro.nodes.hardware import CLOUD_NODE, DEDICATED_PROFILES, VOLUNTEER_PROFILES

    rows = [
        [p.name, p.processor, p.cores, p.base_frame_ms, p.capacity_fps]
        for p in [*VOLUNTEER_PROFILES, *DEDICATED_PROFILES, CLOUD_NODE]
    ]
    print(
        format_table(
            ["node", "processor", "cores", "frame ms", "capacity fps"],
            rows,
            title="Table II — hardware catalog",
        )
    )


def cmd_fig3(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_single_user_cdf

    result = run_single_user_cdf(_config(args))
    means = result.means()
    print(
        format_table(
            ["edge server", "mean e2e ms"],
            [[node, means[node]] for node in result.latencies],
            title=f"Fig. 3 — user {result.user_id} vs edge servers",
        )
    )
    if args.cdf:
        for node, points in result.cdfs().items():
            print(format_cdf(points, label=f"{node} e2e (ms)"))


def cmd_table3(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_pairwise_selection

    result = run_pairwise_selection(_config(args))
    rows = []
    for user in result.user_ids:
        cells = [
            f"{result.pairwise_ms[(user, node)]:5.0f}"
            + ("*" if result.selected[user] == node else " ")
            for node in result.node_ids
        ]
        rows.append([user] + cells)
    print(
        format_table(
            ["user"] + list(result.node_ids),
            rows,
            title="Table III — pairwise e2e latency (ms); * = selected",
        )
    )


def cmd_fig4(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_failover_trace

    result = run_failover_trace(_config(args))
    print(
        format_table(
            ["approach", "peak latency after failure (ms)"],
            [
                ["proactive switch (ours)", result.proactive_peak_ms],
                ["re-connect", result.reactive_peak_ms],
            ],
            title=f"Fig. 4 — node killed at t={result.fail_at_ms / 1000:.0f}s",
        )
    )


def cmd_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import STRATEGIES, run_elasticity_sweep

    counts = args.users or [1, 3, 5, 7, 9, 11, 13, 15]
    result = run_elasticity_sweep(_config(args), user_counts=counts)
    rows = [
        [strategy] + [f"{v:.0f}" for v in result.series(strategy)]
        for strategy in STRATEGIES
    ]
    print(
        format_table(
            ["strategy"] + [str(n) for n in counts],
            rows,
            title="Fig. 5 — average e2e latency (ms) by user count",
        )
    )


def cmd_fig6(args: argparse.Namespace) -> None:
    from repro.experiments.emulation import run_user_traces
    from repro.metrics.stats import mean

    result = run_user_traces(_config(args))
    rows = []
    for method in result.methods:
        values = [v for trace in result.traces[method].values() for _, v in trace]
        rows.append([method, mean(values), result.over_150_users[method]])
    print(
        format_table(
            ["method", "trace mean ms", "users ever >150ms"],
            rows,
            title="Fig. 6 — per-user traces (emulation)",
        )
    )


def cmd_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.emulation import run_vs_optimal

    result = run_vs_optimal(_config(args))
    rows = [["optimal (offline)", result.optimal_ms, "0%"]]
    for method, value in result.averages_ms.items():
        rows.append([method, value, f"{result.overhead_pct(method):+.0f}%"])
    print(
        format_table(
            ["method", "avg latency ms", "vs optimal"],
            rows,
            title="Fig. 7 — settled average vs optimal assignment",
        )
    )


def cmd_fig8(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_churn_trace

    result = run_churn_trace(_config(args))
    print(f"Fig. 8 — {result.total_nodes} volunteer episodes over 3 minutes")
    print(
        "population:",
        " ".join(f"{t / 1000:.0f}s:{c}" for t, c in result.population_steps),
    )
    print(
        format_table(
            ["window", "avg latency ms"],
            [[f"{t / 1000:.0f}s", v] for t, v in result.latency_trace],
        )
    )


def cmd_fig9(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_topn_sweep

    top_ns = tuple(args.top_n or (1, 2, 3, 4, 5))
    result = run_topn_sweep(_config(args), top_ns=top_ns)
    rows = [
        [
            n,
            result.probes[n],
            result.test_invocations[n],
            result.avg_latency_ms[n],
            result.fairness_std_ms[n],
            result.uncovered_failures[n],
        ]
        for n in result.top_ns
    ]
    print(
        format_table(
            ["TopN", "probes", "test invocations", "avg ms", "fairness std",
             "failures"],
            rows,
            title="Fig. 9 — TopN sweep",
        )
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_fault_tolerance

    result = run_fault_tolerance(_config(args))
    print(
        format_table(
            ["approach", "mean recovery downtime ms"],
            [
                ["proactive (ours)", result.proactive_recovery_ms],
                ["reactive re-connect", result.reactive_recovery_ms],
            ],
            title="Fig. 10(a) — failover downtime",
        )
    )
    print(
        format_table(
            ["TopN", "uncovered failures"],
            [[n, result.failures_by_topn[n]] for n in sorted(result.failures_by_topn)],
            title="Fig. 10(b) — failures by TopN",
        )
    )


def cmd_qos(args: argparse.Namespace) -> None:
    from repro.experiments.qos_admission import run_qos_admission

    result = run_qos_admission(_config(args), qos_latency_ms=args.qos_ms)
    rows = []
    for n in result.user_counts:
        w, wo = result.with_qos[n], result.without_qos[n]
        rows.append(
            [n, f"{w.admitted}/{n}", f"{w.violation_rate:.1%}",
             f"{wo.violation_rate:.1%}"]
        )
    print(
        format_table(
            ["users", "admitted (QoS on)", "violations (on)", "violations (off)"],
            rows,
            title=f"QoS admission control at {args.qos_ms:.0f} ms",
        )
    )


def cmd_trace(args: argparse.Namespace) -> None:
    from repro.obs.analyze import TraceAnalyzer, load_trace, validate_event_order

    if args.summary is not None:
        events = load_trace(args.summary)
        source = args.summary
    else:
        if args.run == "live":
            from repro.obs.scenarios import run_live_trace_scenario_sync

            events = run_live_trace_scenario_sync(sink_path=args.out)
        else:
            from repro.obs.scenarios import run_sim_trace_scenario

            events = run_sim_trace_scenario(seed=args.seed, sink_path=args.out)
        source = args.out
        print(f"trace: {len(events)} events from {args.run} run -> {args.out}")

    analyzer = TraceAnalyzer(events)
    print(
        format_table(
            ["event type", "count"],
            [[kind, count] for kind, count in analyzer.event_type_counts().items()],
            title=f"Trace summary — {source}",
        )
    )
    breakdown = analyzer.phase_breakdown()
    rows = [entry.row(user) for user, entry in breakdown.items()]
    rows.append(analyzer.total_breakdown().row("(all)"))
    print(
        format_table(
            ["user", "frames", "lost", "rtt ms", "queue ms", "process ms",
             "e2e ms"],
            rows,
            title="Latency-phase breakdown (means over completed frames)",
        )
    )
    histogram = analyzer.failover_gap_histogram(bin_ms=args.bin_ms)
    if histogram:
        print(
            format_table(
                ["gap bin (ms)", "recoveries"],
                [[f"{start:.0f}-{start + args.bin_ms:.0f}", count]
                 for start, count in histogram],
                title="Failover recovery gaps (node_fail -> re-serve)",
            )
        )
    if args.timeline:
        print(f"timeline for {args.timeline}:")
        for event in analyzer.per_user_timeline(args.timeline, limit=args.limit):
            fields = {
                k: v for k, v in event.items() if k not in ("type", "t_ms")
            }
            print(f"  {event['t_ms']:10.2f} ms  {event['type']:<20s} {fields}")
    errors = analyzer.reconciliation_errors()
    violations = validate_event_order(events)
    for problem in [*errors, *violations]:
        print(f"WARNING: {problem}")
    if not errors and not violations:
        print("phase reconciliation + event ordering: OK")


COMMANDS = {
    "fig1": (cmd_fig1, "Fig. 1 network study"),
    "table2": (cmd_table2, "Table II hardware catalog"),
    "fig3": (cmd_fig3, "Fig. 3 single-user latency CDFs"),
    "table3": (cmd_table3, "Table III pairwise latency + selection"),
    "fig4": (cmd_fig4, "Fig. 4 failover trace"),
    "fig5": (cmd_fig5, "Fig. 5 elasticity sweep"),
    "fig6": (cmd_fig6, "Fig. 6 per-user traces"),
    "fig7": (cmd_fig7, "Fig. 7 vs optimal assignment"),
    "fig8": (cmd_fig8, "Fig. 8 churn trace"),
    "fig9": (cmd_fig9, "Fig. 9 TopN sweep"),
    "fig10": (cmd_fig10, "Fig. 10 fault tolerance"),
    "qos": (cmd_qos, "QoS admission extension"),
    "trace": (cmd_trace, "capture/summarize a structured trace"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    for name, (_, help_text) in COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--seed", type=int, default=42)
        if name == "fig1":
            sub.add_argument("--probes", type=int, default=20)
        if name == "fig3":
            sub.add_argument("--cdf", action="store_true", help="print full CDFs")
        if name == "fig5":
            sub.add_argument("--users", type=int, nargs="+", default=None)
        if name == "fig9":
            sub.add_argument("--top-n", type=int, nargs="+", default=None)
        if name == "qos":
            sub.add_argument("--qos-ms", type=float, default=90.0)
        if name == "trace":
            sub.add_argument(
                "--run", choices=("sim", "live"), default="sim",
                help="which backend to capture from",
            )
            sub.add_argument(
                "--out", default="trace.jsonl",
                help="JSONL sink path for a fresh capture",
            )
            sub.add_argument(
                "--summary", default=None, metavar="PATH",
                help="summarize an existing JSONL trace instead of running",
            )
            sub.add_argument(
                "--timeline", default=None, metavar="USER",
                help="also print one user's event timeline",
            )
            sub.add_argument("--limit", type=int, default=40,
                             help="max timeline rows")
            sub.add_argument("--bin-ms", type=float, default=100.0,
                             help="failover-gap histogram bin width")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        rows: List[List[str]] = [[name, help_] for name, (_, help_) in COMMANDS.items()]
        print(format_table(["command", "regenerates"], rows))
        return 0
    handler, _ = COMMANDS[args.command]
    handler(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
