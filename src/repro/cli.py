"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro list                 # all available experiments
    python -m repro fig5 --seed 7        # Fig. 5 with a custom seed
    python -m repro fig9 --top-n 1 2 3   # restrict the TopN sweep
    python -m repro table3
    python -m repro qos --qos-ms 80
    python -m repro chaos --run sim --seed 0 --out chaos.jsonl
    python -m repro chaos hunt --scenario controlplane --config failure_detection_ms=4000 --out repro.json
    python -m repro chaos replay repro.json
    python -m repro chaos check chaos.jsonl
    python -m repro sweep run --experiment fig9_topn --seeds 5 --workers 4
    python -m repro sweep status --store .sweeps/fig9_topn
    python -m repro sweep report --store .sweeps/fig9_topn

Every command prints the same tables the benchmark harness does; seeds
make runs reproducible. This is deliberately thin plumbing over
:mod:`repro.experiments` — anything the CLI prints, library users can
compute programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.metrics.report import format_cdf, format_table


def _config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(seed=args.seed)


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
def cmd_fig1(args: argparse.Namespace) -> None:
    from repro.experiments.network_study import run_network_study

    result = run_network_study(_config(args), probes_per_pair=args.probes)
    rows = [
        [name, s.mean_ms, s.p50_ms, s.p90_ms, s.min_ms, s.max_ms]
        for name, s in result.summaries().items()
    ]
    print(
        format_table(
            ["target class", "mean", "p50", "p90", "min", "max"],
            rows,
            title="Fig. 1 — RTT (ms) from metro users",
        )
    )


def cmd_table2(args: argparse.Namespace) -> None:
    from repro.nodes.hardware import CLOUD_NODE, DEDICATED_PROFILES, VOLUNTEER_PROFILES

    rows = [
        [p.name, p.processor, p.cores, p.base_frame_ms, p.capacity_fps]
        for p in [*VOLUNTEER_PROFILES, *DEDICATED_PROFILES, CLOUD_NODE]
    ]
    print(
        format_table(
            ["node", "processor", "cores", "frame ms", "capacity fps"],
            rows,
            title="Table II — hardware catalog",
        )
    )


def cmd_fig3(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_single_user_cdf

    result = run_single_user_cdf(_config(args))
    means = result.means()
    print(
        format_table(
            ["edge server", "mean e2e ms"],
            [[node, means[node]] for node in result.latencies],
            title=f"Fig. 3 — user {result.user_id} vs edge servers",
        )
    )
    if args.cdf:
        for node, points in result.cdfs().items():
            print(format_cdf(points, label=f"{node} e2e (ms)"))


def cmd_table3(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_pairwise_selection

    result = run_pairwise_selection(_config(args))
    rows = []
    for user in result.user_ids:
        cells = [
            f"{result.pairwise_ms[(user, node)]:5.0f}"
            + ("*" if result.selected[user] == node else " ")
            for node in result.node_ids
        ]
        rows.append([user] + cells)
    print(
        format_table(
            ["user"] + list(result.node_ids),
            rows,
            title="Table III — pairwise e2e latency (ms); * = selected",
        )
    )


def cmd_fig4(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import run_failover_trace

    result = run_failover_trace(_config(args))
    print(
        format_table(
            ["approach", "peak latency after failure (ms)"],
            [
                ["proactive switch (ours)", result.proactive_peak_ms],
                ["re-connect", result.reactive_peak_ms],
            ],
            title=f"Fig. 4 — node killed at t={result.fail_at_ms / 1000:.0f}s",
        )
    )


def cmd_fig5(args: argparse.Namespace) -> None:
    from repro.experiments.realworld import STRATEGIES, run_elasticity_sweep

    counts = args.users or [1, 3, 5, 7, 9, 11, 13, 15]
    result = run_elasticity_sweep(_config(args), user_counts=counts)
    rows = [
        [strategy] + [f"{v:.0f}" for v in result.series(strategy)]
        for strategy in STRATEGIES
    ]
    print(
        format_table(
            ["strategy"] + [str(n) for n in counts],
            rows,
            title="Fig. 5 — average e2e latency (ms) by user count",
        )
    )


def cmd_fig6(args: argparse.Namespace) -> None:
    from repro.experiments.emulation import run_user_traces
    from repro.metrics.stats import mean

    result = run_user_traces(_config(args))
    rows = []
    for method in result.methods:
        values = [v for trace in result.traces[method].values() for _, v in trace]
        rows.append([method, mean(values), result.over_150_users[method]])
    print(
        format_table(
            ["method", "trace mean ms", "users ever >150ms"],
            rows,
            title="Fig. 6 — per-user traces (emulation)",
        )
    )


def cmd_fig7(args: argparse.Namespace) -> None:
    from repro.experiments.emulation import run_vs_optimal

    result = run_vs_optimal(_config(args))
    rows = [["optimal (offline)", result.optimal_ms, "0%"]]
    for method, value in result.averages_ms.items():
        rows.append([method, value, f"{result.overhead_pct(method):+.0f}%"])
    print(
        format_table(
            ["method", "avg latency ms", "vs optimal"],
            rows,
            title="Fig. 7 — settled average vs optimal assignment",
        )
    )


def cmd_fig8(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_churn_trace

    result = run_churn_trace(_config(args))
    print(f"Fig. 8 — {result.total_nodes} volunteer episodes over 3 minutes")
    print(
        "population:",
        " ".join(f"{t / 1000:.0f}s:{c}" for t, c in result.population_steps),
    )
    print(
        format_table(
            ["window", "avg latency ms"],
            [[f"{t / 1000:.0f}s", v] for t, v in result.latency_trace],
        )
    )


def cmd_fig9(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_topn_sweep

    top_ns = tuple(args.top_n or (1, 2, 3, 4, 5))
    result = run_topn_sweep(_config(args), top_ns=top_ns)
    rows = [
        [
            n,
            result.probes[n],
            result.test_invocations[n],
            result.avg_latency_ms[n],
            result.fairness_std_ms[n],
            result.uncovered_failures[n],
        ]
        for n in result.top_ns
    ]
    print(
        format_table(
            ["TopN", "probes", "test invocations", "avg ms", "fairness std",
             "failures"],
            rows,
            title="Fig. 9 — TopN sweep",
        )
    )


def cmd_fig10(args: argparse.Namespace) -> None:
    from repro.experiments.churn_experiment import run_fault_tolerance

    result = run_fault_tolerance(_config(args))
    print(
        format_table(
            ["approach", "mean recovery downtime ms"],
            [
                ["proactive (ours)", result.proactive_recovery_ms],
                ["reactive re-connect", result.reactive_recovery_ms],
            ],
            title="Fig. 10(a) — failover downtime",
        )
    )
    print(
        format_table(
            ["TopN", "uncovered failures"],
            [[n, result.failures_by_topn[n]] for n in sorted(result.failures_by_topn)],
            title="Fig. 10(b) — failures by TopN",
        )
    )


def cmd_qos(args: argparse.Namespace) -> None:
    from repro.experiments.qos_admission import run_qos_admission

    result = run_qos_admission(_config(args), qos_latency_ms=args.qos_ms)
    rows = []
    for n in result.user_counts:
        w, wo = result.with_qos[n], result.without_qos[n]
        rows.append(
            [n, f"{w.admitted}/{n}", f"{w.violation_rate:.1%}",
             f"{wo.violation_rate:.1%}"]
        )
    print(
        format_table(
            ["users", "admitted (QoS on)", "violations (on)", "violations (off)"],
            rows,
            title=f"QoS admission control at {args.qos_ms:.0f} ms",
        )
    )


def _write_trace(events: Sequence[object], path: str) -> None:
    from repro.obs.tracer import JsonlSink

    sink = JsonlSink(path)
    try:
        for event in events:
            sink.write(event)
    finally:
        sink.close()
    print(f"trace: {len(events)} events -> {path}")


def _print_violations(violations: Sequence[object]) -> None:
    """Violations go to stderr: a failing chaos exit names its reasons."""
    print(f"{len(violations)} invariant violation(s):", file=sys.stderr)
    for violation in violations:
        print(f"  {violation}", file=sys.stderr)


def _parse_config_overrides(pairs: Sequence[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects KEY=VALUE, got {pair!r}")
        key, raw = pair.split("=", 1)
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


def cmd_chaos(args: argparse.Namespace) -> int:
    command = getattr(args, "chaos_command", None)
    if command == "hunt":
        return _cmd_chaos_hunt(args)
    if command == "replay":
        return _cmd_chaos_replay(args)
    if command == "check":
        return _cmd_chaos_check(args)
    return _cmd_chaos_run(args)


def _cmd_chaos_run(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import (
        run_live_chaos,
        run_sim_chaos,
        run_sim_controlplane_chaos,
    )

    if args.plan == "controlplane":
        if args.run == "live":
            raise SystemExit(
                "--plan controlplane runs on the sim backend only "
                "(use the `controlplane` command's defaults)"
            )
        report, events = run_sim_controlplane_chaos(
            args.seed, horizon_ms=args.horizon_ms
        )
    elif args.run == "live":
        import asyncio

        report, events = asyncio.run(
            run_live_chaos(args.seed, horizon_ms=args.horizon_ms)
        )
    else:
        report, events = run_sim_chaos(args.seed, horizon_ms=args.horizon_ms)
    if args.out:
        _write_trace(events, args.out)
    for line in report.summary_lines():
        print(line)
    if report.violations:
        _print_violations(report.violations)
    if not report.ok or report.violations:
        return 1
    return 0


def _cmd_chaos_hunt(args: argparse.Namespace) -> int:
    from repro.faults.search import HuntConfig, hunt
    from repro.obs.tracer import JsonlSink, Tracer

    config = HuntConfig(
        scenario=args.scenario,
        attempts=args.attempts,
        horizon_ms=args.horizon_ms,
        shards=args.shards,
        replicas=args.replicas,
        max_rules=args.max_rules,
        config_overrides=tuple(
            sorted(_parse_config_overrides(args.config or []).items())
        ),
    )
    sink = JsonlSink(args.trace_out) if args.trace_out else None
    tracer = Tracer(sink=sink)
    try:
        result = hunt(config, hunt_seed=args.seed, tracer=tracer)
    finally:
        if sink is not None:
            sink.close()
    for line in result.summary_lines():
        print(line)
    if not result.found:
        print("no violation found", file=sys.stderr)
        return 1
    if args.out and result.artifact is not None:
        result.artifact.save(args.out)
        print(f"repro artifact -> {args.out}")
    return 0


def _cmd_chaos_replay(args: argparse.Namespace) -> int:
    from repro.faults.search import ReproArtifact, replay_artifact

    artifact = ReproArtifact.load(args.artifact)
    print(f"replaying {args.artifact}: scenario={artifact.scenario} "
          f"seed={artifact.seed} rules={len(artifact.plan)}")
    for line in artifact.plan.describe():
        print("  " + line)
    report, events, reproduced = replay_artifact(artifact)
    if args.out:
        _write_trace(events, args.out)
    print(f"expected: {artifact.violation}")
    violations = getattr(report, "violations", [])
    if violations:
        _print_violations(violations)
    if reproduced:
        print("reproduced: identical violation")
        return 0
    print("NOT reproduced", file=sys.stderr)
    return 1


def _cmd_chaos_check(args: argparse.Namespace) -> int:
    from repro.obs.analyze import load_trace
    from repro.verify import check_events

    events = load_trace(args.trace)
    expect_promotion = {"auto": None, "yes": True, "no": False}[
        args.expect_promotion
    ]
    violations = check_events(
        events,
        time_scale=args.time_scale,
        expect_promotion=expect_promotion,
    )
    print(f"{args.trace}: {len(events)} events, "
          f"{len(violations)} violation(s)")
    if violations:
        _print_violations(violations)
        return 1
    print("all streaming invariants hold")
    return 0


def cmd_controlplane(args: argparse.Namespace) -> None:
    from repro.faults.scenarios import run_sim_controlplane_chaos

    report, events = run_sim_controlplane_chaos(
        args.seed,
        shards=args.shards,
        replicas=args.replicas,
        horizon_ms=args.horizon_ms,
    )
    if args.out:
        from repro.obs.tracer import JsonlSink

        sink = JsonlSink(args.out)
        try:
            for event in events:
                sink.write(event)
        finally:
            sink.close()
        print(f"trace: {len(events)} events -> {args.out}")
    for line in report.summary_lines():
        print(line)
    print(
        "control plane: "
        + ", ".join(
            f"{kind}={report.event_counts.get(kind, 0)}"
            for kind in (
                "shard_route",
                "shard_merge",
                "manager_promote",
                "registry_handoff",
            )
        )
    )
    if not report.ok:
        raise SystemExit(1)


def cmd_trace(args: argparse.Namespace) -> None:
    from repro.obs.analyze import TraceAnalyzer, load_trace, validate_event_order

    if args.summary is not None:
        events = load_trace(args.summary)
        source = args.summary
    else:
        if args.run == "live":
            from repro.obs.scenarios import run_live_trace_scenario_sync

            events = run_live_trace_scenario_sync(sink_path=args.out)
        else:
            from repro.obs.scenarios import run_sim_trace_scenario

            events = run_sim_trace_scenario(seed=args.seed, sink_path=args.out)
        source = args.out
        print(f"trace: {len(events)} events from {args.run} run -> {args.out}")

    analyzer = TraceAnalyzer(events)
    print(
        format_table(
            ["event type", "count"],
            [[kind, count] for kind, count in analyzer.event_type_counts().items()],
            title=f"Trace summary — {source}",
        )
    )
    breakdown = analyzer.phase_breakdown()
    rows = [entry.row(user) for user, entry in breakdown.items()]
    rows.append(analyzer.total_breakdown().row("(all)"))
    print(
        format_table(
            ["user", "frames", "lost", "rtt ms", "queue ms", "process ms",
             "e2e ms"],
            rows,
            title="Latency-phase breakdown (means over completed frames)",
        )
    )
    decisions = analyzer.policy_decision_summary()
    if decisions:
        print(
            format_table(
                ["winner", "wins", "mean margin ms"],
                [[node, int(stats["wins"]), f"{stats['mean_margin_ms']:.2f}"]
                 for node, stats in decisions.items()],
                title="Policy decisions (ranked-first counts)",
            )
        )
    histogram = analyzer.failover_gap_histogram(bin_ms=args.bin_ms)
    if histogram:
        print(
            format_table(
                ["gap bin (ms)", "recoveries"],
                [[f"{start:.0f}-{start + args.bin_ms:.0f}", count]
                 for start, count in histogram],
                title="Failover recovery gaps (node_fail -> re-serve)",
            )
        )
    if args.timeline:
        print(f"timeline for {args.timeline}:")
        for event in analyzer.per_user_timeline(args.timeline, limit=args.limit):
            fields = {
                k: v for k, v in event.items() if k not in ("type", "t_ms")
            }
            print(f"  {event['t_ms']:10.2f} ms  {event['type']:<20s} {fields}")
    errors = analyzer.reconciliation_errors()
    violations = validate_event_order(events)
    for problem in [*errors, *violations]:
        print(f"WARNING: {problem}")
    if not errors and not violations:
        print("phase reconciliation + event ordering: OK")


# ----------------------------------------------------------------------
# Sweep engine (repro.sweep)
# ----------------------------------------------------------------------
def _parse_param_value(raw: str):
    """``--param`` value coercion: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            continue
    return raw


def _parse_grid(pairs: Optional[List[str]]) -> Optional[dict]:
    if not pairs:
        return None
    grid = {}
    for pair in pairs:
        name, sep, values = pair.partition("=")
        if not sep or not name or not values:
            raise SystemExit(
                f"--param must look like name=v1,v2,...: got {pair!r}"
            )
        grid[name] = [_parse_param_value(v) for v in values.split(",")]
    return grid


def _sweep_store(args: argparse.Namespace, experiment: str):
    from pathlib import Path

    from repro.sweep import RunStore

    root = args.store or str(Path(".sweeps") / experiment)
    return RunStore(root)


def cmd_sweep_run(args: argparse.Namespace) -> None:
    from repro.obs import Tracer
    from repro.sweep import (
        SweepInterrupted,
        SweepSpec,
        get_experiment,
        run_sweep,
    )

    experiment = get_experiment(args.experiment)
    grid = _parse_grid(args.param) or dict(experiment.default_grid)
    if getattr(args, "policy", None):
        from repro.policy import get as get_policy

        names = [p.strip() for p in args.policy.split(",") if p.strip()]
        for name in names:
            get_policy(name)  # fail fast on unknown policies
        grid["policy"] = names
    spec = SweepSpec.build(
        experiment.name,
        grid,
        n_seeds=args.seeds,
        base_seed=args.base_seed,
        salt=args.salt,
    )
    store = _sweep_store(args, experiment.name)
    tracer = Tracer(sink=args.trace_out) if args.trace_out else None
    platform = getattr(args, "platform", None)
    if platform is not None:
        where = f"platform={platform}, {args.workers} workers"
    elif args.serial or args.workers == 1:
        where = "serial"
    else:
        where = f"{args.workers} workers"
    print(
        f"sweep {experiment.name}: {spec.total_runs()} runs "
        f"({where}) -> {store.root}"
    )
    try:
        result = run_sweep(
            spec,
            store,
            platform=platform,
            workers=args.workers,
            serial=args.serial,
            timeout_s=args.timeout_s,
            retries=args.retries,
            limit=args.limit,
            tracer=tracer,
        )
    except SweepInterrupted as interrupted:
        print(f"sweep interrupted by --limit: {interrupted}")
        print(f"resume with the same command; store: {store.root}")
        return
    finally:
        if tracer is not None:
            tracer.close()
    print(
        f"executed={result.executed} skipped(cached)={result.skipped} "
        f"failed={result.failed} retried={result.retried} "
        f"wall={result.wall_s:.2f}s"
    )
    _print_sweep_report(store, metric=None)


def cmd_sweep_status(args: argparse.Namespace) -> None:
    from repro.sweep import RunStore

    store = RunStore(args.store)
    spec = store.load_manifest()
    if spec is None:
        print(f"no sweep manifest in {store.root}")
        return
    records = {r.run_key: r for r in store.records()}
    runs = spec.expand()
    done = sum(1 for r in runs if records.get(r.run_key) and records[r.run_key].ok)
    failed = [
        records[r.run_key]
        for r in runs
        if records.get(r.run_key) and not records[r.run_key].ok
    ]
    print(f"sweep: {spec.experiment}  (store: {store.root})")
    print(f"completed: {done}/{len(runs)}")
    print(f"failed: {len(failed)}")
    print(f"pending: {len(runs) - done - len(failed)}")
    present = [records[r.run_key] for r in runs if r.run_key in records]
    by_status: Dict[str, int] = {}
    for record in present:
        by_status[record.status] = by_status.get(record.status, 0) + 1
    counts = " ".join(f"{s}={n}" for s, n in sorted(by_status.items()))
    wall = sum(r.duration_s for r in present)
    attempts = sum(r.attempts for r in present)
    print(
        f"summary: {counts or 'no records'} | attempts={attempts} "
        f"run-wall={wall:.2f}s"
    )
    if failed:
        print(
            format_table(
                ["run key", "params", "seed", "status", "error"],
                [
                    [f.run_key, str(f.params), f.seed_index, f.status,
                     (f.error or "")[:60]]
                    for f in failed
                ],
                title="failed runs (re-executed on next sweep run)",
            )
        )


def _print_sweep_report(store, metric: Optional[str]) -> None:
    from repro.sweep import aggregate_records, comparison_table, metric_names

    aggregates = aggregate_records(store.records())
    if not aggregates:
        print("no successful runs recorded yet")
        return
    names = [metric] if metric else metric_names(aggregates)
    for name in names:
        headers, rows = comparison_table(aggregates, name)
        if rows:
            print(format_table(headers, rows, title=f"metric: {name}"))


def cmd_sweep_report(args: argparse.Namespace) -> None:
    from repro.sweep import (
        RunStore,
        SectionCheckFailed,
        render_store_markdown,
        update_tagged_section,
    )

    store = RunStore(args.store)
    if args.update:
        body = render_store_markdown(store)
        try:
            changed = update_tagged_section(
                args.update, args.tag, body, check=args.check
            )
        except SectionCheckFailed as stale:
            raise SystemExit(f"report check failed: {stale}") from None
        if args.check:
            print(f"report section {args.tag!r} in {args.update} is current")
        elif changed:
            print(f"updated section {args.tag!r} in {args.update}")
        else:
            print(f"section {args.tag!r} in {args.update} already current")
    elif args.markdown:
        print(render_store_markdown(store), end="")
    else:
        _print_sweep_report(store, metric=args.metric)
    if args.jsonl:
        count = store.export_jsonl(args.jsonl)
        print(f"exported {count} run records -> {args.jsonl}")


def cmd_sweep_list(args: argparse.Namespace) -> None:
    from repro.sweep import experiment_names, get_experiment

    rows = []
    for name in experiment_names():
        exp = get_experiment(name)
        grid = ", ".join(
            f"{k}={list(v)}" for k, v in sorted(exp.default_grid.items())
        )
        rows.append([name, exp.description, grid])
    print(
        format_table(
            ["experiment", "description", "default grid"],
            rows,
            title="sweepable experiments",
        )
    )
    print("\nparameters (pass as --param NAME=V1,V2,...):")
    for name in experiment_names():
        exp = get_experiment(name)
        print(f"  {name}:")
        if not exp.param_help:
            print("    (no documented parameters)")
            continue
        width = max(len(p) for p in exp.param_help)
        for param in sorted(exp.param_help):
            print(f"    {param.ljust(width)}  {exp.param_help[param]}")


_SWEEP_SUBCOMMANDS = {
    "run": cmd_sweep_run,
    "status": cmd_sweep_status,
    "report": cmd_sweep_report,
    "list": cmd_sweep_list,
}


def cmd_sweep(args: argparse.Namespace) -> None:
    _SWEEP_SUBCOMMANDS[args.sweep_command](args)


# ----------------------------------------------------------------------
# Perf benchmarks (benchmarks/perf via repro.metrics.bench)
# ----------------------------------------------------------------------
def cmd_bench_list(args: argparse.Namespace) -> None:
    from repro.metrics.bench import PERF_BENCHMARKS

    print(
        format_table(
            ["name", "script"],
            [[name, script] for name, script in sorted(PERF_BENCHMARKS.items())],
            title="Registered perf benchmarks (benchmarks/perf)",
        )
    )


def cmd_bench_run(args: argparse.Namespace) -> None:
    import tempfile
    from pathlib import Path

    from repro.metrics.bench import perf_bench_dir, run_perf_bench

    extra = list(args.bench_args or [])
    if extra and extra[0] == "--":
        extra = extra[1:]
    if "--output" not in extra:
        if args.update_baseline:
            baseline = perf_bench_dir().parents[1] / "BENCH_perf.json"
            extra += ["--output", str(baseline)]
        else:
            scratch = Path(tempfile.gettempdir()) / "repro_bench_scratch.json"
            extra += ["--output", str(scratch)]
            print(f"(dry run: writing {scratch}; pass --update-baseline "
                  f"to record into the repo BENCH_perf.json)")
    rc = run_perf_bench(args.bench_name, extra)
    if rc != 0:
        raise SystemExit(rc)


_BENCH_SUBCOMMANDS = {
    "run": cmd_bench_run,
    "list": cmd_bench_list,
}


def cmd_bench(args: argparse.Namespace) -> None:
    _BENCH_SUBCOMMANDS[args.bench_command](args)


# ----------------------------------------------------------------------
# Selection policies (repro.policy)
# ----------------------------------------------------------------------
def cmd_policy_list(args: argparse.Namespace) -> None:
    from repro.policy import describe, policy_names

    print(
        format_table(
            ["name", "description"],
            [[name, describe(name)] for name in policy_names()],
            title="Registered selection policies",
        )
    )


_POLICY_SUBCOMMANDS = {
    "list": cmd_policy_list,
}


def cmd_policy(args: argparse.Namespace) -> None:
    _POLICY_SUBCOMMANDS[args.policy_command](args)


COMMANDS = {
    "fig1": (cmd_fig1, "Fig. 1 network study"),
    "table2": (cmd_table2, "Table II hardware catalog"),
    "fig3": (cmd_fig3, "Fig. 3 single-user latency CDFs"),
    "table3": (cmd_table3, "Table III pairwise latency + selection"),
    "fig4": (cmd_fig4, "Fig. 4 failover trace"),
    "fig5": (cmd_fig5, "Fig. 5 elasticity sweep"),
    "fig6": (cmd_fig6, "Fig. 6 per-user traces"),
    "fig7": (cmd_fig7, "Fig. 7 vs optimal assignment"),
    "fig8": (cmd_fig8, "Fig. 8 churn trace"),
    "fig9": (cmd_fig9, "Fig. 9 TopN sweep"),
    "fig10": (cmd_fig10, "Fig. 10 fault tolerance"),
    "qos": (cmd_qos, "QoS admission extension"),
    "chaos": (cmd_chaos, "seeded fault-injection run with recovery checks"),
    "controlplane": (cmd_controlplane,
                     "sharded control-plane chaos: kill shard primaries, "
                     "check promotion + recovery"),
    "trace": (cmd_trace, "capture/summarize a structured trace"),
    "sweep": (cmd_sweep, "parallel, resumable experiment sweeps"),
    "policy": (cmd_policy, "inspect the selection-policy registry"),
    "bench": (cmd_bench, "run the registered perf benchmarks"),
}


def _add_bench_subparsers(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="bench_command", required=True)

    run = sub.add_parser("run", help="run one registered benchmark")
    run.add_argument("bench_name", metavar="NAME",
                     help="benchmark name (see `bench list`)")
    run.add_argument(
        "--update-baseline", action="store_true",
        help="record into the repo-root BENCH_perf.json "
             "(default: a scratch file, so baselines never move by accident)",
    )
    run.add_argument(
        "bench_args", nargs=argparse.REMAINDER, metavar="ARGS",
        help="extra arguments passed through to the benchmark script "
             "(prefix with `--`)",
    )

    sub.add_parser("list", help="list registered perf benchmarks")


def _add_sweep_subparsers(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(dest="sweep_command", required=True)

    run = sub.add_parser("run", help="execute (or resume) a sweep")
    run.add_argument("--experiment", required=True,
                     help="registered experiment name (see `sweep list`)")
    run.add_argument(
        "--param", action="append", default=None, metavar="NAME=V1,V2,...",
        help="one grid axis; repeatable. Default: the experiment's own grid",
    )
    run.add_argument(
        "--policy", default=None, metavar="NAME[,NAME...]",
        help="override the grid's policy axis with these registry names "
             "(see `repro policy list`)",
    )
    run.add_argument("--seeds", type=int, default=5,
                     help="replicates per parameter cell")
    run.add_argument("--base-seed", type=int, default=42,
                     help="sweep-level seed replicates derive from")
    run.add_argument("--salt", default="",
                     help="code-version salt mixed into every run key")
    run.add_argument("--store", default=None, metavar="DIR",
                     help="run-store directory (default .sweeps/<experiment>)")
    run.add_argument("--workers", type=int, default=1,
                     help="process-pool size (1 = in-process)")
    run.add_argument(
        "--platform", default=None,
        choices=["local", "inline", "pool", "subprocess"],
        help="execution platform: local/inline (serial, in-process), "
             "pool (process pool), subprocess (long-lived worker "
             "subprocesses with heartbeats). Default: local when "
             "--workers 1, else pool",
    )
    run.add_argument("--serial", action="store_true",
                     help="force the serial reference executor")
    run.add_argument("--timeout-s", type=float, default=None,
                     help="coarse per-run wall-clock bound")
    run.add_argument("--retries", type=int, default=1,
                     help="retries after worker crashes / timeouts")
    run.add_argument("--limit", type=int, default=None,
                     help="execute at most N runs, then stop (resumable)")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="JSONL sink for sweep lifecycle trace events")

    status = sub.add_parser("status", help="completed/failed/pending counts")
    status.add_argument("--store", required=True, metavar="DIR")

    report = sub.add_parser("report", help="cross-seed aggregate tables")
    report.add_argument("--store", required=True, metavar="DIR")
    report.add_argument("--metric", default=None,
                        help="report one metric (default: all)")
    report.add_argument("--jsonl", default=None, metavar="PATH",
                        help="also export merged run records as JSONL")
    report.add_argument(
        "--markdown", action="store_true",
        help="emit Markdown tables (mean ± ci95 per cell) instead of "
             "the ASCII report",
    )
    report.add_argument(
        "--update", default=None, metavar="DOC",
        help="splice the Markdown report into DOC between "
             "<!-- sweep-report:TAG --> markers (atomic write)",
    )
    report.add_argument(
        "--tag", default="all", metavar="TAG",
        help="tagged-section name used with --update (default: all)",
    )
    report.add_argument(
        "--check", action="store_true",
        help="with --update: verify the section is already "
             "byte-identical; exit non-zero if stale (CI gate)",
    )

    sub.add_parser("list", help="list sweepable experiments")


def _add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    # Legacy single-run flags live on the parent parser; the hunt /
    # replay / check subcommands are optional, so a bare
    # `repro chaos --seed 0` still means "run the canonical plan once".
    parser.add_argument(
        "--run", choices=("sim", "live"), default="sim",
        help="which backend to drive through the plan",
    )
    parser.add_argument(
        "--plan", choices=("canonical", "controlplane"), default="canonical",
        help="which canonical schedule to replay: the all-families plan "
             "or the shard-targeted control-plane plan (sim only)",
    )
    parser.add_argument(
        "--horizon-ms", type=float, default=20_000.0,
        help="scenario length in application milliseconds",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="also dump the full trace as JSONL",
    )
    sub = parser.add_subparsers(dest="chaos_command", required=False)

    hunt = sub.add_parser(
        "hunt",
        help="search seeded fault schedules for invariant violations "
             "and shrink the first find to a minimal reproducer",
    )
    hunt.add_argument("--seed", type=int, default=0, help="hunt seed")
    hunt.add_argument(
        "--scenario", choices=("canonical", "controlplane"),
        default="canonical", help="scenario family to replay plans on",
    )
    hunt.add_argument("--attempts", type=int, default=25,
                      help="max schedules to sample before giving up")
    hunt.add_argument("--horizon-ms", type=float, default=20_000.0)
    hunt.add_argument("--shards", type=int, default=2,
                      help="control-plane shards (controlplane scenario)")
    hunt.add_argument("--replicas", type=int, default=2,
                      help="replicas per shard (controlplane scenario)")
    hunt.add_argument("--max-rules", type=int, default=5,
                      help="max rules per sampled schedule")
    hunt.add_argument(
        "--config", action="append", default=None, metavar="KEY=VALUE",
        help="SystemConfig field override, repeatable (e.g. "
             "failure_detection_ms=4000) — hunt against a weakened config",
    )
    hunt.add_argument("--out", default=None, metavar="PATH",
                      help="write the shrunk repro artifact as JSON")
    hunt.add_argument("--trace-out", default=None, metavar="PATH",
                      help="JSONL sink for hunt_attempt/shrink_step events")

    replay = sub.add_parser(
        "replay", help="re-execute a repro artifact bit-identically"
    )
    replay.add_argument("artifact", metavar="ARTIFACT.json",
                        help="artifact written by `chaos hunt --out`")
    replay.add_argument("--out", default=None, metavar="PATH",
                        help="also dump the replay trace as JSONL")

    check = sub.add_parser(
        "check", help="run the streaming invariant suite over a trace JSONL"
    )
    check.add_argument("trace", metavar="TRACE.jsonl",
                       help="obs trace from either backend")
    check.add_argument(
        "--time-scale", type=float, default=1.0,
        help="budget scale for wall-clock traces: 1000/plan_ms_per_s "
             "(0.2 for the live chaos default)",
    )
    check.add_argument(
        "--expect-promotion", choices=("auto", "yes", "no"), default="auto",
        help="require manager_promote after shard outages (auto: only "
             "if the trace contains any promotion)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    for name, (_, help_text) in COMMANDS.items():
        sub = subparsers.add_parser(name, help=help_text)
        if name == "sweep":
            _add_sweep_subparsers(sub)
            continue
        if name == "bench":
            _add_bench_subparsers(sub)
            continue
        if name == "policy":
            policy_sub = sub.add_subparsers(
                dest="policy_command", required=True
            )
            policy_sub.add_parser(
                "list", help="list registered selection policies"
            )
            continue
        sub.add_argument("--seed", type=int, default=42)
        if name == "fig1":
            sub.add_argument("--probes", type=int, default=20)
        if name == "fig3":
            sub.add_argument("--cdf", action="store_true", help="print full CDFs")
        if name == "fig5":
            sub.add_argument("--users", type=int, nargs="+", default=None)
        if name == "fig9":
            sub.add_argument("--top-n", type=int, nargs="+", default=None)
        if name == "qos":
            sub.add_argument("--qos-ms", type=float, default=90.0)
        if name == "chaos":
            _add_chaos_arguments(sub)
        if name == "controlplane":
            sub.add_argument(
                "--shards", type=int, default=2,
                help="control-plane shard count",
            )
            sub.add_argument(
                "--replicas", type=int, default=2,
                help="replicas per shard (2+ exercises promotion)",
            )
            sub.add_argument(
                "--horizon-ms", type=float, default=20_000.0,
                help="scenario length in application milliseconds",
            )
            sub.add_argument(
                "--out", default=None, metavar="PATH",
                help="also dump the full trace as JSONL",
            )
        if name == "trace":
            sub.add_argument(
                "--run", choices=("sim", "live"), default="sim",
                help="which backend to capture from",
            )
            sub.add_argument(
                "--out", default="trace.jsonl",
                help="JSONL sink path for a fresh capture",
            )
            sub.add_argument(
                "--summary", default=None, metavar="PATH",
                help="summarize an existing JSONL trace instead of running",
            )
            sub.add_argument(
                "--timeline", default=None, metavar="USER",
                help="also print one user's event timeline",
            )
            sub.add_argument("--limit", type=int, default=40,
                             help="max timeline rows")
            sub.add_argument("--bin-ms", type=float, default=100.0,
                             help="failover-gap histogram bin width")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        rows: List[List[str]] = [[name, help_] for name, (_, help_) in COMMANDS.items()]
        print(format_table(["command", "regenerates"], rows))
        return 0
    handler, _ = COMMANDS[args.command]
    # Handlers may return an exit code; bare `None` means success.
    return int(handler(args) or 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
